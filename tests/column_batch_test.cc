// Unit tests for the columnar batch layer: ColumnVector null bitmap and
// string dictionary, RowBatch round-trips, and the hash/byte-size
// equivalence contracts the vectorized engine kernels rely on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/column_vector.h"
#include "storage/row_batch.h"
#include "storage/table.h"

namespace opd::storage {
namespace {

Schema FiveTypeSchema() {
  Schema s;
  EXPECT_TRUE(s.AddColumn({"n", DataType::kNull}).ok());
  EXPECT_TRUE(s.AddColumn({"b", DataType::kBool}).ok());
  EXPECT_TRUE(s.AddColumn({"i", DataType::kInt64}).ok());
  EXPECT_TRUE(s.AddColumn({"d", DataType::kDouble}).ok());
  EXPECT_TRUE(s.AddColumn({"s", DataType::kString}).ok());
  return s;
}

// Rows covering every DataType, nulls in every column, duplicate strings,
// and numeric edge values.
std::vector<Row> FiveTypeRows() {
  std::vector<Row> rows;
  rows.push_back({Value::Null(), Value(true), Value(int64_t{42}),
                  Value(3.25), Value("alpha")});
  rows.push_back({Value::Null(), Value(false), Value(int64_t{-7}),
                  Value(-0.0), Value("beta")});
  rows.push_back({Value::Null(), Value::Null(), Value::Null(), Value::Null(),
                  Value::Null()});
  rows.push_back({Value::Null(), Value(true), Value(int64_t{0}), Value(1e18),
                  Value("alpha")});  // duplicate dictionary entry
  rows.push_back({Value::Null(), Value(false),
                  Value(int64_t{1} << 62), Value(0.0), Value("")});
  return rows;
}

TEST(ColumnVectorTest, NullBitmapRoundTrip) {
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 200; ++i) {
    if (i % 3 == 0) {
      col.AppendNull();
    } else {
      col.Append(Value(int64_t{i}));
    }
  }
  ASSERT_EQ(col.size(), 200u);
  EXPECT_EQ(col.null_count(), 67u);
  EXPECT_TRUE(col.is_native());
  for (int i = 0; i < 200; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(col.IsNull(i)) << i;
      EXPECT_TRUE(col.GetValue(i).is_null()) << i;
    } else {
      EXPECT_FALSE(col.IsNull(i)) << i;
      EXPECT_EQ(col.GetValue(i), Value(int64_t{i})) << i;
    }
  }
}

TEST(ColumnVectorTest, StringDictionaryDedup) {
  ColumnVector col(DataType::kString);
  const std::vector<std::string> words = {"tweet", "retweet", "tweet",
                                          "tweet", "like", "retweet"};
  for (const auto& w : words) col.Append(Value(w));
  ASSERT_TRUE(col.is_native());
  EXPECT_EQ(col.dict_size(), 3u);  // tweet, retweet, like
  // Equal strings share a code; distinct strings do not.
  EXPECT_EQ(col.code_at(0), col.code_at(2));
  EXPECT_EQ(col.code_at(0), col.code_at(3));
  EXPECT_EQ(col.code_at(1), col.code_at(5));
  EXPECT_NE(col.code_at(0), col.code_at(1));
  EXPECT_NE(col.code_at(0), col.code_at(4));
  for (size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(col.string_at(i), words[i]) << i;
  }
}

TEST(ColumnVectorTest, TypeMismatchFallsBackToVariantLane) {
  ColumnVector col(DataType::kInt64);
  col.Append(Value(int64_t{1}));
  col.Append(Value("not an int"));  // demotes
  col.Append(Value(2.5));
  EXPECT_FALSE(col.is_native());
  EXPECT_EQ(col.GetValue(0), Value(int64_t{1}));
  EXPECT_EQ(col.GetValue(1), Value("not an int"));
  EXPECT_EQ(col.GetValue(2), Value(2.5));
  // Hash and byte size still match the row representation.
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(col.HashAt(i), col.GetValue(i).Hash()) << i;
    EXPECT_EQ(col.CellByteSize(i), col.GetValue(i).ByteSize()) << i;
  }
}

TEST(RowBatchTest, MaterializeToBatchesIdentityAllTypes) {
  Table t("five", FiveTypeSchema());
  for (const Row& r : FiveTypeRows()) ASSERT_TRUE(t.AppendRow(r).ok());

  auto batches = t.ToBatches();
  ASSERT_EQ(batches->size(), 1u);
  const RowBatch& batch = (*batches)[0];
  ASSERT_EQ(batch.num_rows(), t.num_rows());

  // Batch -> rows via Materialize reproduces the table exactly.
  Table back("back", t.schema());
  ASSERT_TRUE(batch.Materialize(&back).ok());
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(back.row(r), t.row(r)) << "row " << r;
  }
  // And byte accounting is representation-independent.
  EXPECT_EQ(batch.ByteSize(), t.ByteSize());
  EXPECT_EQ(back.ByteSize(), t.ByteSize());
}

TEST(RowBatchTest, BatchPrimaryTableMaterializesLazily) {
  Table t("five", FiveTypeSchema());
  for (const Row& r : FiveTypeRows()) ASSERT_TRUE(t.AppendRow(r).ok());
  auto batches = t.ToBatches();

  Table from = Table::FromBatches("copy", t.schema(), *batches);
  EXPECT_TRUE(from.columnar());
  EXPECT_EQ(from.num_rows(), t.num_rows());
  EXPECT_EQ(from.ByteSize(), t.ByteSize());
  // Get() answers from columns; rows() materializes the same cells.
  auto cell = from.Get(1, "s");
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(cell.value(), Value("beta"));
  EXPECT_EQ(from.rows(), t.rows());
  // A batch-primary table is sealed.
  EXPECT_FALSE(from.AppendRow(FiveTypeRows()[0]).ok());
}

TEST(RowBatchTest, HashEquivalenceWithRowHash) {
  Table t("five", FiveTypeSchema());
  for (const Row& r : FiveTypeRows()) ASSERT_TRUE(t.AppendRow(r).ok());
  auto batches = t.ToBatches();
  const RowBatch& batch = (*batches)[0];

  const std::vector<size_t> key_cols = {2, 4};  // int64 + string
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(batch.HashRowAt(r), RowHash()(t.row(r))) << "row " << r;
    Row key = {t.row(r)[2], t.row(r)[4]};
    EXPECT_EQ(batch.HashKeysAt(r, key_cols), RowHash()(key)) << "row " << r;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      EXPECT_EQ(batch.column(c).HashAt(r), t.row(r)[c].Hash())
          << "row " << r << " col " << c;
    }
  }
  // 1, 1.0, and true hash equal across differently-typed columns, exactly
  // as Value::Hash defines.
  ColumnVector ints(DataType::kInt64), doubles(DataType::kDouble),
      bools(DataType::kBool);
  ints.Append(Value(int64_t{1}));
  doubles.Append(Value(1.0));
  bools.Append(Value(true));
  EXPECT_EQ(ints.HashAt(0), doubles.HashAt(0));
  EXPECT_EQ(ints.HashAt(0), bools.HashAt(0));
}

TEST(RowBatchTest, ProjectSharesColumnsAndGatherSelects) {
  Table t("five", FiveTypeSchema());
  for (const Row& r : FiveTypeRows()) ASSERT_TRUE(t.AppendRow(r).ok());
  const RowBatch& batch = (*t.ToBatches())[0];

  RowBatch proj = batch.Project({4, 2});
  EXPECT_EQ(proj.num_columns(), 2u);
  EXPECT_EQ(proj.column_ptr(0).get(), batch.column_ptr(4).get());  // zero copy
  EXPECT_EQ(proj.column_ptr(1).get(), batch.column_ptr(2).get());

  RowBatch picked = batch.Gather({0, 3});
  ASSERT_EQ(picked.num_rows(), 2u);
  EXPECT_EQ(picked.RowAt(0), t.row(0));
  EXPECT_EQ(picked.RowAt(1), t.row(3));
  // Gathered string column shares the source dictionary (passthrough):
  // only the 32-bit codes are gathered, strings are never re-interned.
  EXPECT_EQ(picked.column(4).dict().get(), batch.column(4).dict().get());
  EXPECT_EQ(picked.column(4).code_at(0), picked.column(4).code_at(1));

  RowBatch all = batch.Gather({0, 1, 2, 3, 4});
  EXPECT_EQ(all.column_ptr(0).get(), batch.column_ptr(0).get());  // zero copy
}

TEST(RowBatchTest, EmptyTableRoundTrip) {
  Table t("empty", FiveTypeSchema());
  auto batches = t.ToBatches();
  ASSERT_EQ(batches->size(), 1u);
  EXPECT_EQ((*batches)[0].num_rows(), 0u);
  Table from = Table::FromBatches("e2", t.schema(), *batches);
  EXPECT_EQ(from.num_rows(), 0u);
  EXPECT_EQ(from.ByteSize(), 0u);
  EXPECT_TRUE(from.rows().empty());
}

}  // namespace
}  // namespace opd::storage
