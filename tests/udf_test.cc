// Tests for the UDF model and the builtin UDF library: gray-box model
// application (Section 3.1/3.2), local-function execution, and the
// text-analytics helpers.

#include <gtest/gtest.h>

#include "exec/udf_exec.h"
#include "udf/builtin_udfs.h"
#include "udf/udf.h"
#include "udf/udf_registry.h"

namespace opd::udf {
namespace {

using afk::Afk;
using afk::Attribute;
using storage::Column;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Table;
using storage::Value;

// --- Text helpers -----------------------------------------------------------

TEST(TextHelpersTest, LexiconScore) {
  EXPECT_GT(LexiconScore("great wine and merlot tonight", "wine"), 0.0);
  EXPECT_EQ(LexiconScore("nothing topical here", "wine"), 0.0);
  EXPECT_LT(LexiconScore("tasted like vinegar corked", "wine"), 0.0);
  EXPECT_EQ(LexiconScore("wine", "nonexistent-lexicon"), 0.0);
}

TEST(TextHelpersTest, JaccardSimilarity) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity("a b", "c d"), 0.0);
  EXPECT_NEAR(JaccardSimilarity("a b c", "b c d"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(JaccardSimilarity("", ""), 0.0);
}

TEST(TextHelpersTest, GeoTileIdGrid) {
  // Same cell.
  EXPECT_EQ(GeoTileId(37.1, -122.1, 1.0), GeoTileId(37.9, -122.05, 1.0));
  // Different rows.
  EXPECT_NE(GeoTileId(37.5, -122.1, 1.0), GeoTileId(38.5, -122.1, 1.0));
  // Finer tiles distinguish more.
  EXPECT_NE(GeoTileId(37.1, -122.1, 0.5), GeoTileId(37.9, -122.1, 0.5));
}

TEST(TextHelpersTest, ParseLatLon) {
  double lat, lon;
  EXPECT_TRUE(ParseLatLon("37.5,-122.2", &lat, &lon));
  EXPECT_DOUBLE_EQ(lat, 37.5);
  EXPECT_DOUBLE_EQ(lon, -122.2);
  EXPECT_FALSE(ParseLatLon("", &lat, &lon));
  EXPECT_FALSE(ParseLatLon("n/a", &lat, &lon));
  EXPECT_FALSE(ParseLatLon("999,0", &lat, &lon));
}

TEST(TextHelpersTest, ParseLogMeta) {
  std::string lang, device;
  ParseLogMeta("lang=en;dev=ios", &lang, &device);
  EXPECT_EQ(lang, "en");
  EXPECT_EQ(device, "ios");
  ParseLogMeta("garbage", &lang, &device);
  EXPECT_EQ(lang, "unknown");
  EXPECT_EQ(device, "unknown");
}

// --- Registry ----------------------------------------------------------------

TEST(RegistryTest, RegisterAndFind) {
  UdfRegistry reg;
  ASSERT_TRUE(RegisterBuiltinUdfs(&reg).ok());
  EXPECT_GE(reg.size(), 10u);  // the paper's "10 unique UDFs"
  EXPECT_TRUE(reg.Find("UDF_CLASSIFY_WINE_SCORE").ok());
  EXPECT_FALSE(reg.Find("NO_SUCH_UDF").ok());
  EXPECT_TRUE(reg.FindPredicate("valid_geo").ok());
  // Double registration fails.
  EXPECT_FALSE(reg.Register(MakeGeoTileUdf()).ok());
}

// --- Model application --------------------------------------------------------

class UdfModelTest : public ::testing::Test {
 protected:
  Afk TwtrAfk() {
    std::vector<Attribute> attrs = {
        Attribute::Base("TWTR", "tweet_id", DataType::kInt64),
        Attribute::Base("TWTR", "user_id", DataType::kInt64),
        Attribute::Base("TWTR", "tweet_text", DataType::kString),
        Attribute::Base("TWTR", "mention_user", DataType::kInt64),
        Attribute::Base("TWTR", "geo", DataType::kString),
    };
    return Afk::ForBaseRelation("TWTR", attrs, {"tweet_id"});
  }
};

TEST_F(UdfModelTest, FoodiesEndToEndTransformation) {
  // The paper's Figure 3(b): A' = {user_id, sent_sum},
  // F' = {sent_sum > threshold}, K' = {user_id}.
  UdfDefinition udf = MakeClassifyFoodScoreUdf();
  Params params = {{"threshold", Value(0.5)}};
  auto out = ApplyUdfModel(udf, TwtrAfk(), params);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->attrs().size(), 2u);
  EXPECT_TRUE(out->FindByName("user_id").has_value());
  auto sent = out->FindByName("sent_sum");
  ASSERT_TRUE(sent.has_value());
  EXPECT_EQ(sent->producer(), "UDF_CLASSIFY_FOOD_SCORE");
  EXPECT_EQ(out->filters().size(), 1u);
  EXPECT_EQ(out->keys().agg_depth(), 1);
  ASSERT_EQ(out->keys().keys().size(), 1u);
  EXPECT_EQ(out->keys().keys()[0].name(), "user_id");
}

TEST_F(UdfModelTest, ThresholdIsFilterOnlyParameter) {
  // Different thresholds produce the SAME output attribute (signature) but
  // different filters — the property that lets revised queries reuse views.
  UdfDefinition udf = MakeClassifyFoodScoreUdf();
  auto out1 = ApplyUdfModel(udf, TwtrAfk(), {{"threshold", Value(0.5)}});
  auto out2 = ApplyUdfModel(udf, TwtrAfk(), {{"threshold", Value(1.0)}});
  ASSERT_TRUE(out1.ok() && out2.ok());
  EXPECT_EQ(*out1->FindByName("sent_sum"), *out2->FindByName("sent_sum"));
  EXPECT_FALSE(out1->filters() == out2->filters());
}

TEST_F(UdfModelTest, ValueParamEntersSignature) {
  // tile_size changes what tile_id *is*, so it must change the signature.
  UdfDefinition latlon = MakeExtractLatLonUdf();
  auto with_geo = ApplyUdfModel(latlon, TwtrAfk(), {});
  ASSERT_TRUE(with_geo.ok());
  UdfDefinition tile = MakeGeoTileUdf();
  auto t1 = ApplyUdfModel(tile, *with_geo, {{"tile_size", Value(1.0)}});
  auto t2 = ApplyUdfModel(tile, *with_geo, {{"tile_size", Value(0.5)}});
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_FALSE(*t1->FindByName("tile_id") == *t2->FindByName("tile_id"));
}

TEST_F(UdfModelTest, MissingInputFails) {
  UdfDefinition udf = MakeClassifyFoodScoreUdf();
  Afk no_text = Afk::ForBaseRelation(
      "X", {Attribute::Base("X", "user_id", DataType::kInt64)}, {});
  EXPECT_FALSE(ApplyUdfModel(udf, no_text, {}).ok());
}

TEST_F(UdfModelTest, KeptStarPassesEverything) {
  UdfDefinition udf = MakeExtractLatLonUdf();
  auto out = ApplyUdfModel(udf, TwtrAfk(), {});
  ASSERT_TRUE(out.ok());
  // All 5 inputs + lat + lon.
  EXPECT_EQ(out->attrs().size(), 7u);
  // The validity filter is recorded in the model.
  EXPECT_EQ(out->filters().size(), 1u);
}

TEST_F(UdfModelTest, DeterministicAcrossApplications) {
  UdfDefinition udf = MakeFriendshipStrengthUdf();
  Params p = {{"min_strength", Value(2.0)}};
  auto a = ApplyUdfModel(udf, TwtrAfk(), p);
  auto b = ApplyUdfModel(udf, TwtrAfk(), p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
}

// --- Local-function execution -------------------------------------------------

class UdfExecTest : public ::testing::Test {
 protected:
  Table TweetTable() {
    Schema schema({Column{"user_id", DataType::kInt64},
                   Column{"tweet_text", DataType::kString},
                   Column{"mention_user", DataType::kInt64}});
    Table t("tweets", schema);
    auto add = [&](int64_t u, const std::string& text, int64_t m) {
      ASSERT_TRUE(t.AppendRow({Value(u), Value(text), Value(m)}).ok());
    };
    add(1, "lovely wine and merlot and chardonnay", 2);
    add(1, "more wine again vineyard sommelier", 2);
    add(2, "bland stale burnt", 1);
    add(2, "nothing to see", -1);
    add(3, "wine", -1);
    return t;
  }
};

TEST_F(UdfExecTest, WineScoreFiltersAndAggregates) {
  UdfDefinition udf = MakeClassifyWineScoreUdf();
  Table out;
  Params params = {{"threshold", Value(0.5)}};
  ASSERT_TRUE(
      exec::RunLocalFunctions(udf, TweetTable(), params, &out).ok());
  // user 1 has strong wine signal; user 3 has one wine word (0.30 < 0.5);
  // user 2 has none.
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.row(0)[0].as_int64(), 1);
  EXPECT_GT(out.row(0)[1].as_double(), 0.5);
}

TEST_F(UdfExecTest, ThresholdParameterRespected) {
  UdfDefinition udf = MakeClassifyWineScoreUdf();
  Table out;
  Params params = {{"threshold", Value(0.1)}};
  ASSERT_TRUE(
      exec::RunLocalFunctions(udf, TweetTable(), params, &out).ok());
  EXPECT_EQ(out.num_rows(), 2u);  // users 1 and 3 now pass
}

TEST_F(UdfExecTest, FriendshipNormalizesPairs) {
  UdfDefinition udf = MakeFriendshipStrengthUdf();
  Table out;
  Params params = {{"min_strength", Value(1.0)}};
  ASSERT_TRUE(
      exec::RunLocalFunctions(udf, TweetTable(), params, &out).ok());
  // (1->2) twice and (2->1) once normalize to pair (1,2) with strength 3.
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.row(0)[0].as_int64(), 1);
  EXPECT_EQ(out.row(0)[1].as_int64(), 2);
  EXPECT_DOUBLE_EQ(out.row(0)[2].as_double(), 3.0);
}

TEST_F(UdfExecTest, TokenizeExplodesRows) {
  UdfDefinition udf = MakeTokenizeUdf();
  Table out;
  ASSERT_TRUE(exec::RunLocalFunctions(udf, TweetTable(), {}, &out).ok());
  EXPECT_GT(out.num_rows(), TweetTable().num_rows());
  EXPECT_EQ(out.schema().num_columns(), 2u);
}

TEST_F(UdfExecTest, StageAccountingReported) {
  UdfDefinition udf = MakeClassifyWineScoreUdf();
  Table out;
  std::vector<exec::LfStageRun> stages;
  ASSERT_TRUE(exec::RunLocalFunctions(udf, TweetTable(),
                                      {{"threshold", Value(0.5)}}, &out,
                                      &stages)
                  .ok());
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].kind, LfKind::kMap);
  EXPECT_EQ(stages[1].kind, LfKind::kReduce);
  EXPECT_EQ(stages[0].in_rows, 5u);
  EXPECT_GT(stages[0].in_bytes, 0u);
}

TEST_F(UdfExecTest, ExtractLatLonDropsInvalid) {
  Schema schema({Column{"geo", DataType::kString}});
  Table t("g", schema);
  ASSERT_TRUE(t.AppendRow({Value("37.5,-122.2")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("n/a")}).ok());
  UdfDefinition udf = MakeExtractLatLonUdf();
  Table out;
  ASSERT_TRUE(exec::RunLocalFunctions(udf, t, {}, &out).ok());
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.schema().num_columns(), 3u);  // geo, lat, lon
}

// A synthetic UDF with three consecutive map stages (no builtin has a
// map→map chain), exercising the pipelined engine's map-chain fusion: the
// fused single-wave execution must match the phased stage-at-a-time run
// byte-for-byte, including the per-stage accounting calibration relies on.
TEST_F(UdfExecTest, PipelinedFusesConsecutiveMapStagesIdentically) {
  UdfDefinition udf;
  udf.name = "UDF_TEST_MAPCHAIN";

  LocalFunction dbl;
  dbl.name = "chain-lf1-double";
  dbl.kind = LfKind::kMap;
  dbl.op_types = kOpAttrs;
  dbl.out_schema = [](const Schema&, const Params&) -> Result<Schema> {
    return Schema({Column{"y", DataType::kInt64}});
  };
  dbl.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    out->push_back({Value(row[ctx.In("x")].as_int64() * 2)});
  };
  udf.local_functions.push_back(std::move(dbl));

  LocalFunction expand;
  expand.name = "chain-lf2-expand";
  expand.kind = LfKind::kMap;
  expand.op_types = kOpAttrs;
  expand.out_schema = [](const Schema&, const Params&) -> Result<Schema> {
    return Schema({Column{"z", DataType::kInt64}});
  };
  expand.map_fn = [](const Row& row, const LfContext& ctx,
                     std::vector<Row>* out) {
    const int64_t y = row[ctx.In("y")].as_int64();
    out->push_back({Value(y)});
    out->push_back({Value(y + 1)});
  };
  udf.local_functions.push_back(std::move(expand));

  LocalFunction keep_even;
  keep_even.name = "chain-lf3-keep-even";
  keep_even.kind = LfKind::kMap;
  keep_even.op_types = kOpFilter;
  keep_even.out_schema = [](const Schema& in, const Params&) ->
      Result<Schema> { return in; };
  keep_even.map_fn = [](const Row& row, const LfContext& ctx,
                        std::vector<Row>* out) {
    if (row[ctx.In("z")].as_int64() % 2 == 0) out->push_back(row);
  };
  udf.local_functions.push_back(std::move(keep_even));

  Table t("nums", Schema({Column{"x", DataType::kInt64}}));
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i)}).ok());
  }

  Table phased_out;
  std::vector<exec::LfStageRun> phased_stages;
  ASSERT_TRUE(exec::RunLocalFunctions(udf, t, {}, &phased_out,
                                      &phased_stages)
                  .ok());

  ThreadPool pool(4);
  exec::UdfExecOptions opts;
  opts.pipelined = true;
  opts.pool = &pool;
  opts.block_size_bytes = 256;  // force multiple fused map tasks
  Table fused_out;
  std::vector<exec::LfStageRun> fused_stages;
  ASSERT_TRUE(exec::RunLocalFunctions(udf, t, {}, &fused_out, &fused_stages,
                                      opts)
                  .ok());

  EXPECT_EQ(phased_out.rows(), fused_out.rows());
  // Each x yields y=2x (even, kept) and y+1 (odd, dropped): 200 rows.
  EXPECT_EQ(phased_out.num_rows(), 200u);

  // Fusion must not change the per-stage observations.
  ASSERT_EQ(fused_stages.size(), phased_stages.size());
  for (size_t s = 0; s < fused_stages.size(); ++s) {
    SCOPED_TRACE(phased_stages[s].lf_name);
    EXPECT_EQ(fused_stages[s].lf_name, phased_stages[s].lf_name);
    EXPECT_EQ(fused_stages[s].kind, phased_stages[s].kind);
    EXPECT_EQ(fused_stages[s].in_rows, phased_stages[s].in_rows);
    EXPECT_EQ(fused_stages[s].out_rows, phased_stages[s].out_rows);
    EXPECT_EQ(fused_stages[s].in_bytes, phased_stages[s].in_bytes);
    EXPECT_EQ(fused_stages[s].out_bytes, phased_stages[s].out_bytes);
  }
}

TEST_F(UdfExecTest, WordCountCounts) {
  Schema schema({Column{"token", DataType::kString}});
  Table t("tok", schema);
  for (const char* w : {"a", "b", "a", "a", "c", "b"}) {
    ASSERT_TRUE(t.AppendRow({Value(w)}).ok());
  }
  UdfDefinition udf = MakeWordCountUdf();
  Table out;
  ASSERT_TRUE(exec::RunLocalFunctions(udf, t, {{"min_count", Value(1.0)}},
                                      &out)
                  .ok());
  // Only words with count > 1: a(3), b(2).
  ASSERT_EQ(out.num_rows(), 2u);
}

TEST_F(UdfExecTest, HasShuffleDetectsReduce) {
  EXPECT_TRUE(MakeClassifyWineScoreUdf().HasShuffle());
  EXPECT_FALSE(MakeGeoTileUdf().HasShuffle());
  EXPECT_FALSE(MakeExtractLatLonUdf().HasShuffle());
}

}  // namespace
}  // namespace opd::udf

// --- Three-stage UDF (map -> reduce -> map) -----------------------------------

namespace opd::udf {
namespace {

using storage::Column;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Table;
using storage::Value;

class HashtagTrendsTest : public ::testing::Test {
 protected:
  Table TagTable() {
    Schema schema({Column{"user_id", DataType::kInt64},
                   Column{"tweet_text", DataType::kString}});
    Table t("tweets", schema);
    auto add = [&](int64_t u, const std::string& text) {
      ASSERT_TRUE(t.AppendRow({Value(u), Value(text)}).ok());
    };
    // #wine mentioned by 4 distinct users (one twice), #rare by 1.
    add(1, "lovely evening #wine");
    add(2, "cellar visit #wine #Wine");
    add(3, "tasting #wine");
    add(4, "more #wine");
    add(4, "obscure #rare");
    return t;
  }
};

TEST_F(HashtagTrendsTest, ThreeStagesExecute) {
  UdfDefinition udf = MakeHashtagTrendsUdf();
  ASSERT_EQ(udf.local_functions.size(), 3u);
  EXPECT_EQ(udf.local_functions[0].kind, LfKind::kMap);
  EXPECT_EQ(udf.local_functions[1].kind, LfKind::kReduce);
  EXPECT_EQ(udf.local_functions[2].kind, LfKind::kMap);
  EXPECT_TRUE(udf.HasShuffle());

  Table out;
  Params params = {{"min_users", Value(2.0)}};
  std::vector<exec::LfStageRun> stages;
  ASSERT_TRUE(
      exec::RunLocalFunctions(udf, TagTable(), params, &out, &stages).ok());
  ASSERT_EQ(stages.size(), 3u);
  // Only #wine passes min_users = 2 (4 distinct users).
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.row(0)[0].as_string(), "wine");
  EXPECT_EQ(out.row(0)[1].as_int64(), 4);
  EXPECT_EQ(out.row(0)[2].as_string(), "rising");  // 4 <= 4*2
}

TEST_F(HashtagTrendsTest, DistinctUsersNotOccurrences) {
  // user 2 used #wine twice in one tweet: still one distinct user each.
  UdfDefinition udf = MakeHashtagTrendsUdf();
  Table out;
  ASSERT_TRUE(exec::RunLocalFunctions(udf, TagTable(),
                                      {{"min_users", Value(0.0)}}, &out)
                  .ok());
  // Both tags pass with min_users = 0.
  ASSERT_EQ(out.num_rows(), 2u);
}

TEST_F(HashtagTrendsTest, ModelMatchesExecution) {
  // The value-affecting parameter min_users is part of trend_tier's
  // signature but not of tag/tag_users.
  UdfDefinition udf = MakeHashtagTrendsUdf();
  std::vector<afk::Attribute> attrs = {
      afk::Attribute::Base("TWTR", "user_id", DataType::kInt64),
      afk::Attribute::Base("TWTR", "tweet_text", DataType::kString)};
  afk::Afk in = afk::Afk::ForBaseRelation("TWTR", attrs, {});
  auto out2 = ApplyUdfModel(udf, in, {{"min_users", Value(2.0)}});
  auto out3 = ApplyUdfModel(udf, in, {{"min_users", Value(3.0)}});
  ASSERT_TRUE(out2.ok() && out3.ok());
  EXPECT_EQ(*out2->FindByName("tag"), *out3->FindByName("tag"));
  EXPECT_EQ(*out2->FindByName("tag_users"), *out3->FindByName("tag_users"));
  EXPECT_FALSE(*out2->FindByName("trend_tier") ==
               *out3->FindByName("trend_tier"));
  EXPECT_EQ(out2->keys().keys().size(), 1u);
  EXPECT_EQ(out2->keys().keys()[0].name(), "tag");
}

}  // namespace
}  // namespace opd::udf
