// Tests for the view-retention policies (paper Section 10 extension).

#include <gtest/gtest.h>

#include "catalog/eviction.h"
#include "storage/dfs.h"

namespace opd::catalog {
namespace {

using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

class EvictionTest : public ::testing::Test {
 protected:
  // Adds a view of `rows` rows (8 bytes each) and returns its id.
  ViewId AddView(const std::string& tag, int rows) {
    auto table = std::make_shared<Table>(
        "v", Schema({Column{tag, DataType::kInt64}}));
    for (int i = 0; i < rows; ++i) {
      (void)const_cast<Table&>(*table).AppendRow({Value(int64_t{i})});
    }
    ViewDefinition def;
    def.dfs_path = "views/" + tag;
    afk::Attribute a = afk::Attribute::Base("V", tag, DataType::kInt64);
    def.afk = afk::Afk({a}, afk::FilterSet(), afk::KeySet({a}, 0));
    def.out_attrs = {a};
    def.schema = table->schema();
    def.bytes = table->ByteSize();
    (void)dfs_.Write(def.dfs_path, table);
    return store_.Add(std::move(def));
  }

  ViewStore store_;
  storage::Dfs dfs_;
};

TEST_F(EvictionTest, NoBudgetMeansNoEviction) {
  AddView("a", 100);
  ViewRetention retention(&store_, &dfs_, {0, EvictionPolicy::kLru});
  EXPECT_FALSE(retention.OverBudget());
  auto report = retention.Enforce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->views_evicted, 0u);
}

TEST_F(EvictionTest, EnforceMeetsBudget) {
  AddView("a", 100);
  AddView("b", 100);
  AddView("c", 100);
  ViewRetention retention(&store_, &dfs_,
                          {1700, EvictionPolicy::kFifo});  // fits 2 of 3
  EXPECT_TRUE(retention.OverBudget());
  auto report = retention.Enforce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->views_evicted, 1u);
  EXPECT_EQ(report->bytes_reclaimed, 800u);
  EXPECT_LE(store_.TotalBytes(), 1700u);
  EXPECT_FALSE(retention.OverBudget());
}

TEST_F(EvictionTest, FifoEvictsOldestFirst) {
  ViewId a = AddView("a", 10);
  ViewId b = AddView("b", 10);
  ViewRetention retention(&store_, &dfs_, {100, EvictionPolicy::kFifo});
  auto order = retention.EvictionOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], b);
}

TEST_F(EvictionTest, LruEvictsLeastRecentlyUsed) {
  ViewId a = AddView("a", 10);
  ViewId b = AddView("b", 10);
  ViewId c = AddView("c", 10);
  ASSERT_TRUE(store_.RecordAccess(a, 1.0).ok());
  ASSERT_TRUE(store_.RecordAccess(c, 1.0).ok());
  ASSERT_TRUE(store_.RecordAccess(a, 1.0).ok());
  ViewRetention retention(&store_, &dfs_, {1, EvictionPolicy::kLru});
  auto order = retention.EvictionOrder();
  // b never accessed -> first; then c; a most recent -> last.
  EXPECT_EQ(order[0], b);
  EXPECT_EQ(order[1], c);
  EXPECT_EQ(order[2], a);
}

TEST_F(EvictionTest, LfuEvictsLeastFrequent) {
  ViewId a = AddView("a", 10);
  ViewId b = AddView("b", 10);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store_.RecordAccess(b, 1.0).ok());
  ASSERT_TRUE(store_.RecordAccess(a, 1.0).ok());
  ViewRetention retention(&store_, &dfs_, {1, EvictionPolicy::kLfu});
  auto order = retention.EvictionOrder();
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], b);
}

TEST_F(EvictionTest, LargestFirstEvictsBiggest) {
  ViewId small = AddView("small", 5);
  ViewId big = AddView("big", 500);
  ViewRetention retention(&store_, &dfs_,
                          {1, EvictionPolicy::kLargestFirst});
  auto order = retention.EvictionOrder();
  EXPECT_EQ(order[0], big);
  EXPECT_EQ(order[1], small);
}

TEST_F(EvictionTest, CostBenefitKeepsHighValuePerByte) {
  ViewId cheap_useful = AddView("cheap", 5);     // small, big benefit
  ViewId big_useless = AddView("big", 500);      // large, no benefit
  ViewId big_useful = AddView("bigval", 500);    // large, some benefit
  ASSERT_TRUE(store_.RecordAccess(cheap_useful, 100.0).ok());
  ASSERT_TRUE(store_.RecordAccess(big_useful, 50.0).ok());
  ViewRetention retention(&store_, &dfs_,
                          {1, EvictionPolicy::kCostBenefit});
  auto order = retention.EvictionOrder();
  EXPECT_EQ(order[0], big_useless);
  EXPECT_EQ(order[1], big_useful);
  EXPECT_EQ(order[2], cheap_useful);
}

TEST_F(EvictionTest, EvictionDeletesDfsFile) {
  ViewId a = AddView("a", 100);
  ASSERT_TRUE(dfs_.Exists("views/a"));
  ViewRetention retention(&store_, &dfs_, {1, EvictionPolicy::kFifo});
  auto report = retention.Enforce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->views_evicted, 1u);
  EXPECT_FALSE(store_.Has(a));
  EXPECT_FALSE(dfs_.Exists("views/a"));
}

TEST_F(EvictionTest, RecordPlanAccessesCreditsScannedViews) {
  ViewId a = AddView("a", 10);
  ViewId b = AddView("b", 10);
  AddView("untouched", 10);
  plan::Plan plan(plan::Join(plan::ScanView(a), plan::ScanView(b),
                             {{"a", "b"}}));
  ASSERT_TRUE(RecordPlanAccesses(&store_, plan, 100.0).ok());
  EXPECT_EQ((*store_.Find(a))->access_count, 1u);
  EXPECT_DOUBLE_EQ((*store_.Find(a))->cumulative_benefit_s, 50.0);
  EXPECT_DOUBLE_EQ((*store_.Find(b))->cumulative_benefit_s, 50.0);
}

TEST_F(EvictionTest, PolicyNamesDistinct) {
  EXPECT_STRNE(EvictionPolicyName(EvictionPolicy::kLru),
               EvictionPolicyName(EvictionPolicy::kLfu));
  EXPECT_STRNE(EvictionPolicyName(EvictionPolicy::kCostBenefit),
               EvictionPolicyName(EvictionPolicy::kFifo));
}

}  // namespace
}  // namespace opd::catalog
