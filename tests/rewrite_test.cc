// Tests for the rewrite machinery: GUESSCOMPLETE, OPTCOST (with its
// lower-bound invariant), MERGE, REWRITEENUM, the ViewFinder, and the three
// rewriters (BFR, DP, SYNTACTIC).

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "exec/engine.h"
#include "obs/metrics.h"
#include "plan/annotate.h"
#include "plan/fingerprint.h"
#include "rewrite/bf_rewrite.h"
#include "rewrite/dp_rewrite.h"
#include "rewrite/guess_complete.h"
#include "rewrite/merge.h"
#include "rewrite/opt_cost.h"
#include "rewrite/rewrite_enum.h"
#include "rewrite/syntactic.h"
#include "rewrite/view_finder.h"
#include "storage/dfs.h"
#include "udf/builtin_udfs.h"

namespace opd::rewrite {
namespace {

using afk::CmpOp;
using plan::AggFn;
using plan::AggSpec;
using plan::FilterCond;
using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

// A fixture with a miniature TWTR log, an engine, and helpers to
// execute plans (creating opportunistic views) and rewrite queries.
class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs_).ok());
    Schema schema({Column{"tweet_id", DataType::kInt64},
                   Column{"user_id", DataType::kInt64},
                   Column{"tweet_text", DataType::kString},
                   Column{"mention_user", DataType::kInt64}});
    auto t = std::make_shared<Table>("TWTR", schema);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          t->AppendRow(
               {Value(int64_t{i}), Value(int64_t{i % 10}),
                Value(i % 3 == 0 ? "wine merlot delicious" : "plain words"),
                Value(int64_t{i % 7 == 0 ? (i + 1) % 10 : -1})})
              .ok());
    }
    ASSERT_TRUE(catalog_.RegisterBase(t, {"tweet_id"}, &dfs_).ok());
    plan::AnnotationContext ctx{&catalog_, &views_, &udfs_};
    optimizer_ = std::make_unique<optimizer::Optimizer>(
        ctx, optimizer::CostModel());
    engine_ = std::make_unique<exec::Engine>(&dfs_, &views_,
                                             optimizer_.get());
    bfr_ = std::make_unique<BfRewriter>(optimizer_.get(), &views_);
    dp_ = std::make_unique<DpRewriter>(optimizer_.get(), &views_);
    syntactic_ =
        std::make_unique<SyntacticRewriter>(optimizer_.get(), &views_);
  }

  // The wine query: classify users, filter by count.
  plan::Plan WineQuery(double threshold, double min_count) {
    auto extract =
        plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"});
    auto wine = plan::Udf(extract, "UDF_CLASSIFY_WINE_SCORE",
                          {{"threshold", Value(threshold)}});
    auto counts = plan::GroupBy(extract, {"user_id"},
                                {AggSpec{AggFn::kCount, "", "cnt"}});
    auto filtered = plan::Filter(
        counts, FilterCond::Compare("cnt", CmpOp::kGt, Value(min_count)));
    return plan::Plan(plan::Join(wine, filtered, {{"user_id", "user_id"}}),
                      "wine_query");
  }

  void Execute(plan::Plan plan) {
    auto result = engine_->Execute(&plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  storage::TablePtr ExecuteGet(plan::Plan plan) {
    auto result = engine_->Execute(&plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->table;
  }

  EnumDeps Deps() {
    EnumDeps deps;
    deps.optimizer = optimizer_.get();
    deps.views = &views_;
    deps.udfs = &udfs_;
    return deps;
  }

  storage::Dfs dfs_;
  catalog::Catalog catalog_;
  catalog::ViewStore views_;
  udf::UdfRegistry udfs_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<exec::Engine> engine_;
  std::unique_ptr<BfRewriter> bfr_;
  std::unique_ptr<DpRewriter> dp_;
  std::unique_ptr<SyntacticRewriter> syntactic_;
};

// --- GUESSCOMPLETE ----------------------------------------------------------

TEST_F(RewriteTest, GuessCompleteIdentical) {
  plan::Plan p = WineQuery(0.5, 5);
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  EXPECT_TRUE(GuessComplete(p.root()->afk, p.root()->afk));
}

TEST_F(RewriteTest, GuessCompleteWeakerViewFilter) {
  plan::Plan v = WineQuery(0.5, 5);
  plan::Plan q = WineQuery(1.0, 5);  // stronger threshold
  ASSERT_TRUE(optimizer_->Prepare(&v).ok());
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  // The view (weaker filter) can answer the query, not vice versa.
  EXPECT_TRUE(GuessComplete(q.root()->afk, v.root()->afk));
  EXPECT_FALSE(GuessComplete(v.root()->afk, q.root()->afk));
}

TEST_F(RewriteTest, GuessCompleteMoreAggregatedViewRejected) {
  plan::Plan q(plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}));
  plan::Plan v(plan::GroupBy(
      plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}),
      {"user_id"}, {AggSpec{AggFn::kCount, "", "cnt"}}));
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  ASSERT_TRUE(optimizer_->Prepare(&v).ok());
  // The view is more aggregated than the query: unusable.
  EXPECT_FALSE(GuessComplete(q.root()->afk, v.root()->afk));
  // And the raw projection can (optimistically) answer the aggregate.
  EXPECT_TRUE(GuessComplete(v.root()->afk, q.root()->afk));
}

TEST_F(RewriteTest, GuessCompleteMissingBaseAttributeRejected) {
  plan::Plan q(plan::Project(plan::Scan("TWTR"), {"user_id", "mention_user"}));
  plan::Plan v(plan::Project(plan::Scan("TWTR"), {"user_id"}));
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  ASSERT_TRUE(optimizer_->Prepare(&v).ok());
  EXPECT_FALSE(GuessComplete(q.root()->afk, v.root()->afk));
}

// --- OPTCOST ----------------------------------------------------------------

TEST_F(RewriteTest, OptCostZeroForExactMatch) {
  plan::Plan p = WineQuery(0.5, 5);
  Execute(WineQuery(0.5, 5));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  // Find the view whose AFK equals the sink target.
  bool found = false;
  for (const auto* def : views_.All()) {
    if (def->afk == p.root()->afk) {
      CandidateView c = MakeBaseCandidate(*def);
      EXPECT_DOUBLE_EQ(OptCost(p.root()->afk, c, optimizer_->cost_model()),
                       0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RewriteTest, OptCostGrowsWithViewSize) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(1.0, 5);
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  // Among non-exact candidates, OPTCOST must be monotone in view bytes.
  const auto all = views_.All();
  for (const auto* a : all) {
    for (const auto* b : all) {
      CandidateView ca = MakeBaseCandidate(*a), cb = MakeBaseCandidate(*b);
      double oa = OptCost(q.root()->afk, ca, optimizer_->cost_model());
      double ob = OptCost(q.root()->afk, cb, optimizer_->cost_model());
      if (oa > 0 && ob > 0 && a->stats.TotalBytes() < b->stats.TotalBytes()) {
        EXPECT_LE(oa, ob + 1e-9);
      }
    }
  }
}

// Property: OPTCOST is a true lower bound — for every candidate for which
// REWRITEENUM finds a rewrite, COST(rewrite) >= OPTCOST(candidate).
TEST_F(RewriteTest, OptCostLowerBoundsEveryFoundRewrite) {
  Execute(WineQuery(0.5, 5));
  Execute(WineQuery(0.8, 3));
  plan::Plan q = WineQuery(1.0, 5);
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  TargetContext target = MakeTargetContext(q.root(), RewriteOptions{});
  EnumDeps deps = Deps();
  size_t verified = 0;
  for (const auto* def : views_.All()) {
    CandidateView c = MakeBaseCandidate(*def);
    double bound = OptCost(q.root()->afk, c, optimizer_->cost_model());
    if (!GuessComplete(q.root()->afk, c.afk)) continue;
    auto result = RewriteEnum(target, c, deps);
    ASSERT_TRUE(result.ok());
    if (result.value().has_value()) {
      EXPECT_GE(result.value()->cost + 1e-9, bound)
          << "OPTCOST invariant violated for view " << def->id;
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
}

// --- MERGE ------------------------------------------------------------------

TEST_F(RewriteTest, MergeRequiresSharedKeys) {
  Execute(WineQuery(0.5, 5));
  // Find the wine view (keyed user_id, depth 1) and the counts view.
  const catalog::ViewDefinition* wine = nullptr;
  const catalog::ViewDefinition* counts = nullptr;
  const catalog::ViewDefinition* extract = nullptr;
  for (const auto* def : views_.All()) {
    if (def->schema.Has("wine_score")) wine = def;
    if (def->schema.Has("cnt") && def->afk.filters().empty()) counts = def;
    if (def->schema.Has("tweet_text")) extract = def;
  }
  ASSERT_NE(wine, nullptr);
  ASSERT_NE(counts, nullptr);
  ASSERT_NE(extract, nullptr);

  // Aggregated views keyed on the same user_id merge.
  auto merged = MergeCandidates(MakeBaseCandidate(*wine),
                                MakeBaseCandidate(*counts), 4);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->NumParts(), 2u);
  EXPECT_TRUE(merged->afk.FindByName("wine_score").has_value());
  EXPECT_TRUE(merged->afk.FindByName("cnt").has_value());

  // The un-keyed raw extract does not merge (no common key).
  EXPECT_FALSE(MergeCandidates(MakeBaseCandidate(*wine),
                               MakeBaseCandidate(*extract), 4)
                   .has_value());
  // Overlapping parts do not merge.
  EXPECT_FALSE(
      MergeCandidates(*merged, MakeBaseCandidate(*wine), 4).has_value());
  // J bound respected.
  EXPECT_FALSE(MergeCandidates(*merged, MakeBaseCandidate(*counts), 2)
                   .has_value());
}

TEST_F(RewriteTest, BuildCandidateScanForMergedViews) {
  Execute(WineQuery(0.5, 5));
  const catalog::ViewDefinition* wine = nullptr;
  const catalog::ViewDefinition* counts = nullptr;
  for (const auto* def : views_.All()) {
    if (def->schema.Has("wine_score")) wine = def;
    if (def->schema.Has("cnt") && def->afk.filters().empty()) counts = def;
  }
  auto merged = MergeCandidates(MakeBaseCandidate(*wine),
                                MakeBaseCandidate(*counts), 4);
  ASSERT_TRUE(merged.has_value());
  auto scan = BuildCandidateScan(*merged, views_);
  ASSERT_TRUE(scan.ok());
  plan::Plan p(*scan);
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  EXPECT_TRUE(p.root()->afk == merged->afk);
}

// --- REWRITEENUM -------------------------------------------------------------

TEST_F(RewriteTest, RewriteEnumExactMatchIsBareScan) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(0.5, 5);
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  TargetContext target = MakeTargetContext(q.root(), RewriteOptions{});
  for (const auto* def : views_.All()) {
    if (!(def->afk == q.root()->afk)) continue;
    auto result = RewriteEnum(target, MakeBaseCandidate(*def), Deps());
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result.value().has_value());
    EXPECT_DOUBLE_EQ(result.value()->cost, 0.0);
    EXPECT_EQ(result.value()->plan.root()->kind, plan::OpKind::kScan);
    return;
  }
  FAIL() << "no exact-match view found";
}

TEST_F(RewriteTest, RewriteEnumCompensatesUdfThreshold) {
  // Views from threshold 0.5; query wants 1.0: the compensation is the fix
  // filter wine_score > 1.0 on the existing view.
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(1.0, 5);
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  TargetContext target = MakeTargetContext(q.root(), RewriteOptions{});
  bool found = false;
  for (const auto* def : views_.All()) {
    if (!def->schema.Has("wine_score") || !def->schema.Has("cnt")) continue;
    auto result = RewriteEnum(target, MakeBaseCandidate(*def), Deps());
    ASSERT_TRUE(result.ok());
    if (result.value().has_value()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RewriteTest, RewriteEnumRejectsIncompatibleView) {
  // Query with *weaker* filter cannot be answered by the stronger view.
  Execute(WineQuery(1.0, 5));
  plan::Plan q = WineQuery(0.5, 5);
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  TargetContext target = MakeTargetContext(q.root(), RewriteOptions{});
  for (const auto* def : views_.All()) {
    if (!def->schema.Has("wine_score") || !def->schema.Has("cnt")) continue;
    // These joined views carry the >1.0 filter; the query wants >0.5.
    auto result = RewriteEnum(target, MakeBaseCandidate(*def), Deps());
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.value().has_value());
  }
}

// --- ViewFinder ---------------------------------------------------------------

TEST_F(RewriteTest, ViewFinderOrdersByOptCost) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(1.0, 5);
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  RewriteStats stats;
  ViewFinder finder;
  EnumDeps deps = Deps();
  finder.Init(MakeTargetContext(q.root(), deps.options), deps, views_.All(),
              &stats);
  double prev = -1;
  int pops = 0;
  while (!finder.exhausted() && pops < 100) {
    double peek = finder.Peek();
    EXPECT_GE(peek + 1e-9, prev) << "PEEK must be non-decreasing";
    prev = peek;
    (void)finder.Refine();
    ASSERT_TRUE(finder.status().ok());
    ++pops;
  }
  EXPECT_GT(pops, 0);
  EXPECT_EQ(stats.candidates_considered, static_cast<size_t>(pops));
}

TEST_F(RewriteTest, ViewFinderPeekInfinityWhenExhausted) {
  RewriteStats stats;
  ViewFinder finder;
  plan::Plan q = WineQuery(0.5, 5);
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  EnumDeps deps = Deps();
  finder.Init(MakeTargetContext(q.root(), deps.options), deps, {}, &stats);
  EXPECT_TRUE(std::isinf(finder.Peek()));
  EXPECT_FALSE(finder.Refine().has_value());
}

// --- BFR end-to-end -----------------------------------------------------------

TEST_F(RewriteTest, BfrNoViewsReturnsOriginal) {
  plan::Plan q = WineQuery(0.5, 5);
  auto outcome = bfr_->Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->improved);
  EXPECT_DOUBLE_EQ(outcome->est_cost, outcome->original_cost);
}

TEST_F(RewriteTest, BfrFindsExactMatchRewrite) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(0.5, 5);
  auto outcome = bfr_->Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->improved);
  EXPECT_LT(outcome->est_cost, 0.01 * outcome->original_cost);
}

TEST_F(RewriteTest, BfrMemoizesTargetSetupOnFingerprint) {
  auto& registry = obs::MetricRegistry::Global();
  auto& hits = registry.counter("rewrite.viewfinder.memo_hit");
  auto& misses = registry.counter("rewrite.viewfinder.memo_miss");
  const uint64_t hits0 = hits.value();
  const uint64_t misses0 = misses.value();

  plan::Plan q1 = WineQuery(0.5, 5);
  ASSERT_TRUE(bfr_->Rewrite(&q1).ok());
  const uint64_t misses1 = misses.value();
  const uint64_t hits1 = hits.value();
  EXPECT_GT(misses1, misses0);  // first sight of these subplans: misses

  // A structurally identical query re-uses every target's memoized setup:
  // only hits, no new misses.
  plan::Plan q2 = WineQuery(0.5, 5);
  ASSERT_TRUE(bfr_->Rewrite(&q2).ok());
  EXPECT_EQ(misses.value(), misses1);
  EXPECT_EQ(hits.value(), hits1 + (misses1 - misses0));
}

TEST_F(RewriteTest, BfrCompensatedRewriteExecutesEquivalently) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(1.0, 5);
  auto outcome = bfr_->Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->improved);

  auto orig_result = ExecuteGet(WineQuery(1.0, 5));
  plan::Plan best = outcome->plan;
  auto rewr_result = ExecuteGet(std::move(best));
  ASSERT_EQ(orig_result->num_rows(), rewr_result->num_rows());
  // Same schema column names.
  EXPECT_EQ(orig_result->schema().ToString(),
            rewr_result->schema().ToString());
  // Row-level equality (both engines produce deterministic order after
  // grouping; join order may differ, so compare as multisets).
  std::vector<storage::Row> a = orig_result->rows();
  std::vector<storage::Row> b = rewr_result->rows();
  auto row_less = [](const storage::Row& x, const storage::Row& y) {
    for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
      if (x[i] < y[i]) return true;
      if (y[i] < x[i]) return false;
    }
    return x.size() < y.size();
  };
  std::sort(a.begin(), a.end(), row_less);
  std::sort(b.begin(), b.end(), row_less);
  EXPECT_EQ(a, b);
}

TEST_F(RewriteTest, BfrConvergenceTraceRecorded) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(1.0, 5);
  auto outcome = bfr_->Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(outcome->stats.convergence.size(), 2u);
  // First entry is the original cost; costs decrease monotonically.
  EXPECT_DOUBLE_EQ(outcome->stats.convergence.front().second,
                   outcome->original_cost);
  for (size_t i = 1; i < outcome->stats.convergence.size(); ++i) {
    EXPECT_LE(outcome->stats.convergence[i].second,
              outcome->stats.convergence[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(outcome->stats.convergence.back().second,
                   outcome->est_cost);
}

TEST_F(RewriteTest, BfrWorkEfficiencyNeverBeyondDp) {
  Execute(WineQuery(0.5, 5));
  Execute(WineQuery(0.8, 3));
  plan::Plan qb = WineQuery(1.0, 5);
  auto bfr = bfr_->Rewrite(&qb);
  plan::Plan qd = WineQuery(1.0, 5);
  auto dp = dp_->Rewrite(&qd);
  ASSERT_TRUE(bfr.ok());
  ASSERT_TRUE(dp.ok());
  // Identical minimum-cost rewrites (the paper's Theorem 1 consequence).
  EXPECT_NEAR(bfr->est_cost, dp->est_cost, 1e-6 * (1 + dp->est_cost));
  // Work efficiency: BFR considers no more candidates than exhaustive DP.
  EXPECT_LE(bfr->stats.candidates_considered,
            dp->stats.candidates_considered);
}

TEST_F(RewriteTest, BfrAblationWithoutOptCostOrderingStillOptimal) {
  Execute(WineQuery(0.5, 5));
  RewriteOptions ablated;
  ablated.use_optcost_ordering = false;
  BfRewriter fifo(optimizer_.get(), &views_, ablated);
  plan::Plan q1 = WineQuery(1.0, 5);
  auto with = bfr_->Rewrite(&q1);
  plan::Plan q2 = WineQuery(1.0, 5);
  auto without = fifo.Rewrite(&q2);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NEAR(with->est_cost, without->est_cost,
              1e-6 * (1 + with->est_cost));
  // The ablated search does at least as much work.
  EXPECT_GE(without->stats.candidates_considered,
            with->stats.candidates_considered);
}

// Property (paper Section 4.1): GUESSCOMPLETE "may result in a false
// positive, but will never result in a false negative" — whenever
// REWRITEENUM finds a rewrite, GUESSCOMPLETE must have said yes.
TEST_F(RewriteTest, GuessCompleteHasNoFalseNegatives) {
  Execute(WineQuery(0.5, 5));
  Execute(WineQuery(0.8, 3));
  Execute(WineQuery(1.2, 8));
  for (double thr : {0.6, 0.9, 1.5}) {
    plan::Plan q = WineQuery(thr, 5);
    ASSERT_TRUE(optimizer_->Prepare(&q).ok());
    auto dag = plan::JobDag::Build(q);
    ASSERT_TRUE(dag.ok());
    EnumDeps deps = Deps();
    for (size_t i = 0; i < dag->size(); ++i) {
      TargetContext target =
          MakeTargetContext(dag->job(i).op, RewriteOptions{});
      for (const auto* def : views_.All()) {
        CandidateView c = MakeBaseCandidate(*def);
        if (GuessComplete(target.afk, c.afk)) continue;
        auto result = RewriteEnum(target, c, deps);
        ASSERT_TRUE(result.ok());
        EXPECT_FALSE(result.value().has_value())
            << "false negative: view " << def->id << " rewrote target " << i
            << " of thr=" << thr << " despite GUESSCOMPLETE=false";
      }
    }
  }
}

// --- Syntactic baseline --------------------------------------------------------

TEST_F(RewriteTest, SyntacticMatchesIdenticalPlans) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(0.5, 5);
  auto outcome = syntactic_->Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->improved);
}

TEST_F(RewriteTest, SyntacticMissesChangedThreshold) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(1.0, 5);  // revised threshold
  auto syntactic = syntactic_->Rewrite(&q);
  ASSERT_TRUE(syntactic.ok());
  plan::Plan qb = WineQuery(1.0, 5);
  auto semantic = bfr_->Rewrite(&qb);
  ASSERT_TRUE(semantic.ok());
  // The counts subtree is unchanged -> syntactic reuses it; but the wine
  // UDF threshold changed, so syntactic cannot reuse the expensive scoring
  // view while BFR can: BFR must be strictly better.
  EXPECT_LT(semantic->est_cost, syntactic->est_cost);
}

TEST_F(RewriteTest, SyntacticZeroAfterDroppingIdenticalViews) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(0.5, 5);
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  for (const auto& node : q.TopoOrder()) {
    if (node->kind != plan::OpKind::kScan) views_.DropIdentical(node->afk);
  }
  plan::Plan q2 = WineQuery(0.5, 5);
  auto outcome = syntactic_->Rewrite(&q2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->improved);
}

// --- DecisionLog ------------------------------------------------------------

TEST_F(RewriteTest, RejectReasonCodesAreStable) {
  // Machine-readable vocabulary — the bench records and the EXPLAIN REWRITE
  // JSON export depend on these exact strings.
  EXPECT_STREQ(RejectReasonCode(RejectReason::kNone), "accepted");
  EXPECT_STREQ(RejectReasonCode(RejectReason::kSignatureMismatch),
               "signature_mismatch");
  EXPECT_STREQ(RejectReasonCode(RejectReason::kAfkContainment),
               "afk_containment");
  EXPECT_STREQ(RejectReasonCode(RejectReason::kNotCostImproving),
               "not_cost_improving");
  EXPECT_STREQ(RejectReasonCode(RejectReason::kPrunedByBound),
               "pruned_by_bound");
}

TEST_F(RewriteTest, DecisionLogEmptyWhenLoggingOff) {
  Execute(WineQuery(0.5, 5));
  RewriteOptions options;
  options.log_decisions = false;
  BfRewriter quiet(optimizer_.get(), &views_, options);
  plan::Plan q = WineQuery(0.5, 5);
  auto outcome = quiet.Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->improved);  // behaviour unchanged, log just absent
  EXPECT_TRUE(outcome->decisions.targets.empty());
}

TEST_F(RewriteTest, DecisionLogAccountsForEveryCandidate) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(0.5, 5);
  auto outcome = bfr_->Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->improved);
  const DecisionLog& log = outcome->decisions;
  ASSERT_FALSE(log.targets.empty());

  const DecisionCounts counts = log.Counts();
  EXPECT_GT(counts.candidates, 0u);
  EXPECT_GT(counts.accepted, 0u);
  // Every candidate lands in exactly one bucket.
  EXPECT_EQ(counts.candidates,
            counts.accepted + counts.signature_mismatch +
                counts.afk_containment + counts.not_cost_improving +
                counts.pruned_by_bound);

  for (const TargetDecision& td : log.targets) {
    size_t accepted_here = 0;
    for (const CandidateDecision& cd : td.candidates) {
      if (cd.reject == RejectReason::kNone) {
        ++accepted_here;
        // The accepted candidate is the chosen one, and it carries a
        // costed, found rewrite.
        EXPECT_EQ(cd.candidate_id, td.chosen_id);
        EXPECT_TRUE(cd.rewrite_found);
        EXPECT_GE(cd.opt_cost, 0.0);
      }
      if (cd.reject == RejectReason::kSignatureMismatch) {
        // INIT exclusions happen before costing.
        EXPECT_LT(cd.opt_cost, 0.0);
      }
    }
    EXPECT_LE(accepted_here, 1u);
    EXPECT_GE(td.original_cost, td.best_cost);
    EXPECT_DOUBLE_EQ(td.predicted_benefit_s,
                     td.original_cost - td.best_cost);
  }
}

TEST_F(RewriteTest, DecisionLogOptCostNonDecreasingPerTarget) {
  Execute(WineQuery(0.5, 5));
  Execute(WineQuery(0.8, 3));
  plan::Plan q = WineQuery(0.5, 5);
  auto outcome = bfr_->Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  for (const TargetDecision& td : outcome->decisions.targets) {
    // Refined candidates are popped in OPTCOST order, and bound-pruned
    // leftovers are drained in the same order, so per target the costed
    // estimates never decrease.
    double prev = -1;
    for (const CandidateDecision& cd : td.candidates) {
      if (cd.opt_cost < 0) continue;  // never costed (INIT exclusion)
      EXPECT_GE(cd.opt_cost + 1e-9, prev)
          << "target " << td.target_index << " candidate "
          << cd.candidate_id;
      prev = cd.opt_cost;
    }
  }
}

TEST_F(RewriteTest, DecisionLogJsonWellFormed) {
  Execute(WineQuery(0.5, 5));
  plan::Plan q = WineQuery(0.5, 5);
  auto outcome = bfr_->Rewrite(&q);
  ASSERT_TRUE(outcome.ok());
  const std::string json = outcome->decisions.ToJson();
  EXPECT_EQ(json.find("{\"targets\":["), 0u);
  EXPECT_NE(json.find("\"counts\":{\"candidates\":"), std::string::npos);
  EXPECT_NE(json.find("\"decision\":\"accepted\""), std::string::npos);
}

}  // namespace
}  // namespace opd::rewrite
