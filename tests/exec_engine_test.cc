// Integration tests for the MapReduce simulator: correct operator execution,
// opportunistic view materialization, metrics, and stats collection.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "exec/engine.h"
#include "exec/stats_collector.h"
#include "plan/plan.h"
#include "storage/dfs.h"
#include "udf/builtin_udfs.h"

namespace opd::exec {
namespace {

using afk::CmpOp;
using plan::AggFn;
using plan::AggSpec;
using plan::FilterCond;
using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs_).ok());
    Schema schema({Column{"tweet_id", DataType::kInt64},
                   Column{"user_id", DataType::kInt64},
                   Column{"tweet_text", DataType::kString},
                   Column{"mention_user", DataType::kInt64},
                   Column{"score", DataType::kDouble}});
    auto t = std::make_shared<Table>("TWTR", schema);
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(
          t->AppendRow({Value(int64_t{i}), Value(int64_t{i % 6}),
                        Value(i % 2 == 0 ? "wine merlot" : "plain text"),
                        Value(int64_t{(i + 1) % 6}), Value(i * 0.1)})
              .ok());
    }
    ASSERT_TRUE(catalog_.RegisterBase(t, {"tweet_id"}, &dfs_).ok());
    plan::AnnotationContext ctx{&catalog_, &views_, &udfs_};
    optimizer_ = std::make_unique<optimizer::Optimizer>(
        ctx, optimizer::CostModel());
    engine_ = std::make_unique<Engine>(&dfs_, &views_, optimizer_.get());
  }

  storage::TablePtr Run(plan::Plan plan) {
    auto result = engine_->Execute(&plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    last_metrics_ = result->metrics;
    return result->table;
  }

  storage::Dfs dfs_;
  catalog::Catalog catalog_;
  catalog::ViewStore views_;
  udf::UdfRegistry udfs_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<Engine> engine_;
  ExecMetrics last_metrics_;
};

TEST_F(EngineTest, ProjectExecution) {
  auto t = Run(plan::Plan(plan::Project(plan::Scan("TWTR"), {"user_id"})));
  ASSERT_EQ(t->num_rows(), 60u);
  EXPECT_EQ(t->schema().num_columns(), 1u);
}

TEST_F(EngineTest, FilterCompareExecution) {
  auto t = Run(plan::Plan(plan::Filter(
      plan::Scan("TWTR"),
      FilterCond::Compare("user_id", CmpOp::kEq, Value(int64_t{3})))));
  EXPECT_EQ(t->num_rows(), 10u);
}

TEST_F(EngineTest, FilterOpaqueExecution) {
  // valid_geo on tweet_text: no tweet text parses as lat/lon -> empty.
  auto t = Run(plan::Plan(plan::Filter(
      plan::Scan("TWTR"), FilterCond::Opaque("valid_geo", {"tweet_text"}))));
  EXPECT_EQ(t->num_rows(), 0u);
}

TEST_F(EngineTest, GroupByCountSumAvgMinMax) {
  auto t = Run(plan::Plan(plan::GroupBy(
      plan::Scan("TWTR"), {"user_id"},
      {AggSpec{AggFn::kCount, "", "cnt"}, AggSpec{AggFn::kSum, "score", "s"},
       AggSpec{AggFn::kAvg, "score", "avg"},
       AggSpec{AggFn::kMin, "score", "mn"},
       AggSpec{AggFn::kMax, "score", "mx"}})));
  ASSERT_EQ(t->num_rows(), 6u);
  // Groups ordered by key; user 0 has tweets 0,6,...,54.
  EXPECT_EQ(t->row(0)[0].as_int64(), 0);
  EXPECT_EQ(t->row(0)[1].as_int64(), 10);
  EXPECT_NEAR(t->row(0)[2].as_double(), 27.0, 1e-9);  // 0+0.6+...+5.4
  EXPECT_NEAR(t->row(0)[3].as_double(), 2.7, 1e-9);
  EXPECT_NEAR(t->row(0)[4].as_double(), 0.0, 1e-9);
  EXPECT_NEAR(t->row(0)[5].as_double(), 5.4, 1e-9);
}

TEST_F(EngineTest, JoinExecution) {
  auto counts = plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                              {AggSpec{AggFn::kCount, "", "cnt"}});
  auto wine = plan::Udf(
      plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}),
      "UDF_CLASSIFY_WINE_SCORE", {{"threshold", Value(0.1)}});
  auto t = Run(plan::Plan(plan::Join(wine, counts, {{"user_id", "user_id"}})));
  // Tweet parity aligns with user parity (i % 2 vs i % 6): exactly the three
  // even users tweet wine and pass threshold 0.1.
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->schema().num_columns(), 3u);  // user_id, wine_score, cnt
}

TEST_F(EngineTest, JoinPreservesMultiplicity) {
  // Join base rows (6 users x 10 rows) with per-user counts: 60 rows out.
  auto counts = plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                              {AggSpec{AggFn::kCount, "", "cnt"}});
  auto t = Run(plan::Plan(plan::Join(
      plan::Project(plan::Scan("TWTR"), {"tweet_id", "user_id"}), counts,
      {{"user_id", "user_id"}})));
  EXPECT_EQ(t->num_rows(), 60u);
}

TEST_F(EngineTest, EveryJobMaterializesAView) {
  Run(plan::Plan(plan::GroupBy(
      plan::Project(plan::Scan("TWTR"), {"user_id"}), {"user_id"},
      {AggSpec{AggFn::kCount, "", "cnt"}})));
  // Two jobs -> two opportunistic views.
  EXPECT_EQ(last_metrics_.jobs, 2);
  EXPECT_EQ(last_metrics_.views_created, 2);
  EXPECT_EQ(views_.size(), 2u);
  // Each view's data exists in the DFS.
  for (const auto* def : views_.All()) {
    EXPECT_TRUE(dfs_.Exists(def->dfs_path));
    EXPECT_FALSE(def->fingerprint.empty());
  }
}

TEST_F(EngineTest, DuplicateViewsAreDeduplicated) {
  plan::Plan p1(plan::Project(plan::Scan("TWTR"), {"user_id"}));
  Run(std::move(p1));
  EXPECT_EQ(views_.size(), 1u);
  plan::Plan p2(plan::Project(plan::Scan("TWTR"), {"user_id"}));
  Run(std::move(p2));
  EXPECT_EQ(views_.size(), 1u);  // same AFK -> deduplicated
}

TEST_F(EngineTest, MetricsAccounting) {
  Run(plan::Plan(plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                               {AggSpec{AggFn::kCount, "", "cnt"}})));
  EXPECT_GT(last_metrics_.sim_time_s, 0.0);
  EXPECT_GT(last_metrics_.bytes_read, 0u);
  EXPECT_GT(last_metrics_.bytes_shuffled, 0u);  // group-by shuffles
  EXPECT_GT(last_metrics_.bytes_written, 0u);
  EXPECT_GT(last_metrics_.stats_time_s, 0.0);  // stats job ran
}

TEST_F(EngineTest, MapOnlyPlanDoesNotShuffle) {
  Run(plan::Plan(plan::Project(plan::Scan("TWTR"), {"user_id"})));
  EXPECT_EQ(last_metrics_.bytes_shuffled, 0u);
}

TEST_F(EngineTest, ScanOfViewExecutes) {
  Run(plan::Plan(plan::Project(plan::Scan("TWTR"), {"user_id"})));
  ASSERT_EQ(views_.size(), 1u);
  catalog::ViewId id = views_.All()[0]->id;
  auto t = Run(plan::Plan(plan::ScanView(id)));
  EXPECT_EQ(t->num_rows(), 60u);
}

TEST_F(EngineTest, RewrittenEquivalentPlansProduceSameResult) {
  // Execute a filtered group-by; then execute "view + extra filter" and
  // compare results row-for-row.
  plan::Plan orig(plan::Filter(
      plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                    {AggSpec{AggFn::kCount, "", "cnt"}}),
      FilterCond::Compare("cnt", CmpOp::kGt, Value(5.0))));
  auto orig_result = Run(std::move(orig));

  // The group-by view was materialized; filter it.
  catalog::ViewId group_view = -1;
  for (const auto* def : views_.All()) {
    if (def->schema.Has("cnt") && def->schema.num_columns() == 2) {
      group_view = def->id;
      break;
    }
  }
  ASSERT_GE(group_view, 0);
  plan::Plan rewr(plan::Filter(
      plan::ScanView(group_view),
      FilterCond::Compare("cnt", CmpOp::kGt, Value(5.0))));
  auto rewr_result = Run(std::move(rewr));
  ASSERT_EQ(orig_result->num_rows(), rewr_result->num_rows());
  for (size_t i = 0; i < orig_result->num_rows(); ++i) {
    EXPECT_EQ(orig_result->row(i), rewr_result->row(i));
  }
}

TEST(StatsCollectorTest, EstimatesRowsExactly) {
  Schema schema({Column{"x", DataType::kInt64}});
  Table t("t", schema);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(int64_t{i % 10})}).ok());
  }
  StatsCollector collector(0.1, 42);
  catalog::TableStats stats = collector.Collect(t);
  EXPECT_DOUBLE_EQ(stats.rows, 5000.0);
  // x has 10 distinct values; the sample saturates.
  EXPECT_NEAR(stats.DistinctOr("x", 0), 10.0, 2.0);
  EXPECT_NEAR(stats.ColBytesOr("x", 0), 8.0, 0.1);
}

TEST(StatsCollectorTest, HighCardinalityScalesUp) {
  Schema schema({Column{"x", DataType::kInt64}});
  Table t("t", schema);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(int64_t{i})}).ok());
  }
  StatsCollector collector(0.1, 42);
  catalog::TableStats stats = collector.Collect(t);
  EXPECT_GT(stats.DistinctOr("x", 0), 2500.0);
}

TEST(StatsCollectorTest, JobTimeIsSmallFractionOfFullScan) {
  Schema schema({Column{"x", DataType::kInt64}});
  Table t("t", schema);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(int64_t{i})}).ok());
  }
  StatsCollector collector(0.05, 42);
  optimizer::CostModel model;
  double stats_time = collector.JobTime(t, model);
  double full_read = model.ReadCost(static_cast<double>(t.ByteSize()));
  // Stats cost is latency-dominated but its I/O share is 5% of a full read.
  EXPECT_LT(stats_time - model.job_latency(), full_read);
}

}  // namespace
}  // namespace opd::exec
