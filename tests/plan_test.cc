// Tests for plan building, annotation (Section 3.2), the job DAG
// (Section 2.2), and fingerprints.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "plan/annotate.h"
#include "plan/fingerprint.h"
#include "plan/job.h"
#include "plan/plan.h"
#include "storage/dfs.h"
#include "udf/builtin_udfs.h"

namespace opd::plan {
namespace {

using afk::CmpOp;
using storage::Column;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Table;
using storage::Value;

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs_).ok());
    // A miniature TWTR-shaped table.
    Schema schema({Column{"tweet_id", DataType::kInt64},
                   Column{"user_id", DataType::kInt64},
                   Column{"tweet_text", DataType::kString},
                   Column{"mention_user", DataType::kInt64}});
    auto t = std::make_shared<Table>("TWTR", schema);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(t->AppendRow({Value(int64_t{i}), Value(int64_t{i % 5}),
                                Value("wine delicious"),
                                Value(int64_t{(i + 1) % 5})})
                      .ok());
    }
    ASSERT_TRUE(catalog_.RegisterBase(t, {"tweet_id"}, &dfs_).ok());
    ctx_.catalog = &catalog_;
    ctx_.views = &views_;
    ctx_.udfs = &udfs_;
  }

  storage::Dfs dfs_;
  catalog::Catalog catalog_;
  catalog::ViewStore views_;
  udf::UdfRegistry udfs_;
  AnnotationContext ctx_;
};

TEST_F(PlanTest, ScanAnnotation) {
  Plan p(Scan("TWTR"));
  ASSERT_TRUE(AnnotatePlan(p, ctx_).ok());
  EXPECT_EQ(p.root()->out_schema.num_columns(), 4u);
  EXPECT_EQ(p.root()->afk.keys().keys().size(), 1u);
  EXPECT_EQ(p.root()->afk.keys().agg_depth(), 0);
}

TEST_F(PlanTest, ScanUnknownTableFails) {
  Plan p(Scan("NOPE"));
  EXPECT_FALSE(AnnotatePlan(p, ctx_).ok());
}

TEST_F(PlanTest, ProjectAnnotation) {
  Plan p(Project(Scan("TWTR"), {"user_id", "tweet_text"}));
  ASSERT_TRUE(AnnotatePlan(p, ctx_).ok());
  EXPECT_EQ(p.root()->out_schema.num_columns(), 2u);
  EXPECT_EQ(p.root()->out_schema.column(0).name, "user_id");
  // Projection does not regroup: K (the physical keying) is preserved even
  // though the key column is gone from the output.
  ASSERT_EQ(p.root()->afk.keys().keys().size(), 1u);
  EXPECT_EQ(p.root()->afk.keys().keys()[0].name(), "tweet_id");
}

TEST_F(PlanTest, ProjectUnknownColumnFails) {
  Plan p(Project(Scan("TWTR"), {"nope"}));
  EXPECT_FALSE(AnnotatePlan(p, ctx_).ok());
}

TEST_F(PlanTest, FilterAnnotation) {
  Plan p(Filter(Scan("TWTR"), FilterCond::Compare("user_id", CmpOp::kGt,
                                                  Value(int64_t{2}))));
  ASSERT_TRUE(AnnotatePlan(p, ctx_).ok());
  EXPECT_EQ(p.root()->afk.filters().size(), 1u);
  EXPECT_EQ(p.root()->out_schema.num_columns(), 4u);
}

TEST_F(PlanTest, GroupByAnnotation) {
  Plan p(GroupBy(Scan("TWTR"), {"user_id"},
                 {AggSpec{AggFn::kCount, "", "cnt"}}));
  ASSERT_TRUE(AnnotatePlan(p, ctx_).ok());
  EXPECT_EQ(p.root()->out_schema.num_columns(), 2u);
  EXPECT_EQ(p.root()->afk.keys().agg_depth(), 1);
  auto cnt = p.root()->afk.FindByName("cnt");
  ASSERT_TRUE(cnt.has_value());
  EXPECT_EQ(cnt->producer(), "agg:COUNT");
}

TEST_F(PlanTest, GroupByDifferentKeysDifferentAggAttr) {
  Plan p1(GroupBy(Scan("TWTR"), {"user_id"},
                  {AggSpec{AggFn::kCount, "", "cnt"}}));
  Plan p2(GroupBy(Scan("TWTR"), {"mention_user"},
                  {AggSpec{AggFn::kCount, "", "cnt"}}));
  ASSERT_TRUE(AnnotatePlan(p1, ctx_).ok());
  ASSERT_TRUE(AnnotatePlan(p2, ctx_).ok());
  EXPECT_FALSE(*p1.root()->afk.FindByName("cnt") ==
               *p2.root()->afk.FindByName("cnt"));
}

TEST_F(PlanTest, SameComputationSameAnnotation) {
  // Two structurally identical plans built separately annotate identically —
  // the foundation of semantic view matching.
  Plan p1(Udf(Project(Scan("TWTR"), {"user_id", "tweet_text"}),
              "UDF_CLASSIFY_WINE_SCORE", {{"threshold", Value(0.5)}}));
  Plan p2(Udf(Project(Scan("TWTR"), {"user_id", "tweet_text"}),
              "UDF_CLASSIFY_WINE_SCORE", {{"threshold", Value(0.5)}}));
  ASSERT_TRUE(AnnotatePlan(p1, ctx_).ok());
  ASSERT_TRUE(AnnotatePlan(p2, ctx_).ok());
  EXPECT_TRUE(p1.root()->afk == p2.root()->afk);
}

TEST_F(PlanTest, UdfAnnotationMatchesPhysicalSchema) {
  Plan p(Udf(Scan("TWTR"), "UDF_CLASSIFY_WINE_SCORE",
             {{"threshold", Value(0.5)}}));
  ASSERT_TRUE(AnnotatePlan(p, ctx_).ok());
  EXPECT_EQ(p.root()->out_schema.num_columns(), 2u);
  EXPECT_EQ(p.root()->out_schema.column(1).name, "wine_score");
}

TEST_F(PlanTest, UnknownUdfFails) {
  Plan p(Udf(Scan("TWTR"), "NO_SUCH_UDF"));
  EXPECT_FALSE(AnnotatePlan(p, ctx_).ok());
}

TEST_F(PlanTest, JoinSharedLineageDeduplicates) {
  auto extract = Project(Scan("TWTR"), {"user_id", "tweet_text"});
  auto counts = GroupBy(extract, {"user_id"},
                        {AggSpec{AggFn::kCount, "", "cnt"}});
  auto wine = Udf(extract, "UDF_CLASSIFY_WINE_SCORE",
                  {{"threshold", Value(0.5)}});
  Plan p(Join(wine, counts, {{"user_id", "user_id"}}));
  ASSERT_TRUE(AnnotatePlan(p, ctx_).ok());
  // user_id appears once: both sides share the same base attribute.
  EXPECT_EQ(p.root()->out_schema.num_columns(), 3u);
}

TEST_F(PlanTest, FingerprintDistinguishesThresholds) {
  auto make = [](double thr) {
    return Udf(Project(Scan("TWTR"), {"user_id", "tweet_text"}),
               "UDF_CLASSIFY_WINE_SCORE", {{"threshold", Value(thr)}});
  };
  EXPECT_EQ(Fingerprint(make(0.5)), Fingerprint(make(0.5)));
  EXPECT_NE(Fingerprint(make(0.5)), Fingerprint(make(1.0)));
}

TEST_F(PlanTest, FingerprintDistinguishesStructure) {
  auto scan = Scan("TWTR");
  EXPECT_NE(Fingerprint(Project(scan, {"user_id"})),
            Fingerprint(Project(scan, {"tweet_id"})));
  EXPECT_NE(Fingerprint(scan), Fingerprint(Project(scan, {"user_id"})));
}

TEST_F(PlanTest, TopoOrderChildrenFirst) {
  auto extract = Project(Scan("TWTR"), {"user_id", "tweet_text"});
  auto counts =
      GroupBy(extract, {"user_id"}, {AggSpec{AggFn::kCount, "", "cnt"}});
  Plan p(counts);
  auto order = p.TopoOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0]->kind, OpKind::kScan);
  EXPECT_EQ(order[2]->kind, OpKind::kGroupByAgg);
}

TEST_F(PlanTest, TopoOrderVisitsSharedSubtreeOnce) {
  auto extract = Project(Scan("TWTR"), {"user_id", "tweet_text"});
  auto wine = Udf(extract, "UDF_CLASSIFY_WINE_SCORE",
                  {{"threshold", Value(0.5)}});
  auto counts =
      GroupBy(extract, {"user_id"}, {AggSpec{AggFn::kCount, "", "cnt"}});
  Plan p(Join(wine, counts, {{"user_id", "user_id"}}));
  // scan, extract, wine, counts, join = 5 (extract shared, visited once).
  EXPECT_EQ(p.TopoOrder().size(), 5u);
}

TEST_F(PlanTest, JobDagExcludesScansAndTracksEdges) {
  auto extract = Project(Scan("TWTR"), {"user_id", "tweet_text"});
  auto wine = Udf(extract, "UDF_CLASSIFY_WINE_SCORE",
                  {{"threshold", Value(0.5)}});
  auto counts =
      GroupBy(extract, {"user_id"}, {AggSpec{AggFn::kCount, "", "cnt"}});
  Plan p(Join(wine, counts, {{"user_id", "user_id"}}));
  ASSERT_TRUE(AnnotatePlan(p, ctx_).ok());
  auto dag = JobDag::Build(p);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->size(), 4u);  // extract, wine, counts, join
  // The sink is the join and consumes two producers.
  const Job& sink = dag->job(dag->sink());
  EXPECT_EQ(sink.op->kind, OpKind::kJoin);
  EXPECT_EQ(sink.producers.size(), 2u);
  // The shared extract job feeds two consumers.
  EXPECT_EQ(dag->job(0).consumers.size(), 2u);
}

TEST_F(PlanTest, JobDagRequiresAnnotation) {
  Plan p(Project(Scan("TWTR"), {"user_id"}));
  EXPECT_FALSE(JobDag::Build(p).ok());
}

TEST_F(PlanTest, CloneTreeDeepCopies) {
  auto original = Project(Scan("TWTR"), {"user_id"});
  Plan p(original);
  ASSERT_TRUE(AnnotatePlan(p, ctx_).ok());
  OpNodePtr copy = CloneTree(original);
  EXPECT_NE(copy.get(), original.get());
  EXPECT_NE(copy->children[0].get(), original->children[0].get());
  EXPECT_FALSE(copy->annotated);
  EXPECT_EQ(Fingerprint(copy), Fingerprint(original));
}

TEST_F(PlanTest, DuplicateOutputNamesRejected) {
  // Joining two different aggregates that both name their output "cnt".
  auto extract = Project(Scan("TWTR"), {"user_id", "mention_user"});
  auto c1 = GroupBy(extract, {"user_id"}, {AggSpec{AggFn::kCount, "", "cnt"}});
  auto c2 = GroupBy(extract, {"mention_user"},
                    {AggSpec{AggFn::kCount, "", "cnt"}});
  Plan p(Join(c1, c2, {{"user_id", "mention_user"}}));
  EXPECT_FALSE(AnnotatePlan(p, ctx_).ok());
}

}  // namespace
}  // namespace opd::plan
