// Tests for the opd::Session facade: wiring, Run over OQL and plans, option
// consolidation, the EXPLAIN ANALYZE rendering (golden shape), and the
// ExecMetrics serializations shared by bench --json and the trace export.

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "exec/metrics.h"
#include "oql/parser.h"
#include "session/session.h"
#include "udf/builtin_udfs.h"
#include "workload/datagen.h"

namespace opd {
namespace {

std::unique_ptr<Session> MakeSession(SessionOptions options = {}) {
  auto session = Session::Create(options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  workload::DataGenConfig data;
  data.n_tweets = 500;
  data.n_checkins = 200;
  data.n_locations = 50;
  storage::TablePtr twtr = workload::GenerateTwitterLog(data);
  EXPECT_TRUE(udf::RegisterBuiltinUdfs(&(*session)->udfs()).ok());
  EXPECT_TRUE((*session)->RegisterTable(twtr, {"tweet_id"}).ok());
  return std::move(session).value();
}

TEST(SessionTest, CreateWiresTheWholeStack) {
  auto session = MakeSession();
  EXPECT_TRUE(session->catalog().Has("TWTR"));
  EXPECT_GE(session->udfs().size(), 10u);
  EXPECT_EQ(session->views().size(), 0u);
}

TEST(SessionTest, RunOqlReturnsTableMetricsAndJobs) {
  auto session = MakeSession();
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_NE(run->table, nullptr);
  EXPECT_GT(run->table->num_rows(), 0u);
  EXPECT_GT(run->metrics.jobs, 0);
  EXPECT_EQ(static_cast<int>(run->jobs.size()), run->metrics.jobs);
  EXPECT_TRUE(run->rewritten);
  EXPECT_EQ(run->trace, nullptr);  // tracing is off by default
  // Executing retained the job outputs as opportunistic views.
  EXPECT_GT(session->views().size(), 0u);
}

TEST(SessionTest, RunParseErrorsPropagate) {
  auto session = MakeSession();
  auto run = session->Run("this is not OQL");
  EXPECT_FALSE(run.ok());
}

TEST(SessionTest, TracingProducesQueryRootedSpans) {
  SessionOptions options;
  options.obs.tracing = true;
  auto session = MakeSession(options);
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;",
      RunOptions{.rewrite = false});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_NE(run->trace, nullptr);
  auto spans = run->trace->Sorted();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].name.rfind("query:", 0), 0u);
  // Every other span hangs off the query root (transitively).
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_NE(spans[i].parent, 0u) << spans[i].name;
  }
}

TEST(SessionTest, ObsOptionsMirrorIntoEngineOptions) {
  SessionOptions options;
  options.obs.metrics = false;
  options.obs.trace_tasks = false;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->options().engine.metrics);
  EXPECT_FALSE((*session)->options().engine.trace_tasks);
}

// Masks every number (and byte-unit suffix) so the golden pins the layout
// while times/bytes stay free to vary run to run.
std::string MaskNumbers(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size();) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      while (i < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.')) {
        ++i;
      }
      if (i + 1 < s.size() && (s[i] == 'K' || s[i] == 'M' || s[i] == 'G') &&
          s[i + 1] == 'B') {
        i += 2;
      } else if (i < s.size() && s[i] == 'B') {
        ++i;
      }
      out += '#';
      continue;
    }
    out += s[i++];
  }
  return out;
}

TEST(SessionTest, ExplainAnalyzeGoldenShape) {
  auto session = MakeSession();
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;",
      RunOptions{.rewrite = false});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string masked =
      MaskNumbers(run->ExplainAnalyze(exec::AnalyzeOptions{.show_wall = false}));
  auto pad = [](std::string s) {
    if (s.size() < 44) s.append(44 - s.size(), ' ');
    return s;
  };
  // Pipelined execution (the default) reports fused pipeline tasks: "#p".
  // The residual sign is deterministic here: the estimator undershoots this
  // groupby (observed proxy cost > prediction), so resid renders "+".
  // The groupby input is a direct base-table scan, so it is recyclable; a
  // cold session's first run records a recycler miss.
  const std::string expected =
      pad("GROUPBY(user_id)") +
      "  [job #] time=#s pred=#s resid=+#% rows=#-># read=# shuffled=# "
      "written=# tasks=#p+#r recycle=miss\n" +
      pad("  SCAN(TWTR)") + "  (scan)\n" +
      "jobs: #  sim time: #s (+stats #s)  read: #  shuffled: #  written: #  "
      "views: #  max resid: +#%\n";
  EXPECT_EQ(masked, expected);
}

TEST(SessionTest, ExplainAnalyzePhasedModeReportsMapTasks) {
  SessionOptions options;
  options.engine.pipelined = false;
  auto session = MakeSession(options);
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;",
      RunOptions{.rewrite = false});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string masked =
      MaskNumbers(run->ExplainAnalyze(exec::AnalyzeOptions{.show_wall = false}));
  EXPECT_NE(masked.find("tasks=#m+#r"), std::string::npos) << masked;
  EXPECT_EQ(masked.find("#p"), std::string::npos) << masked;
}

TEST(SessionTest, ExplainAnalyzeOverOqlIncludesWallStats) {
  auto session = MakeSession();
  auto text = session->ExplainAnalyze(
      "r = scan TWTR | project user_id, retweets | "
      "filter retweets > 1;");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[job "), std::string::npos);
  EXPECT_NE(text->find("wall="), std::string::npos);
  EXPECT_NE(text->find("straggler="), std::string::npos);
}

TEST(ExecMetricsTest, ToStringIncludesMaxTaskTime) {
  exec::ExecMetrics m;
  m.sim_time_s = 2.0;
  m.max_task_time_s = 0.125;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("max_task="), std::string::npos);
  EXPECT_NE(s.find("0.125"), std::string::npos);
}

TEST(ExecMetricsTest, ToJsonHasEveryField) {
  exec::ExecMetrics m;
  m.sim_time_s = 1.5;
  m.stats_time_s = 0.5;
  m.stats_wall_time_s = 0.125;
  m.bytes_read = 10;
  m.bytes_shuffled = 20;
  m.bytes_written = 30;
  m.jobs = 2;
  m.views_created = 1;
  m.max_task_time_s = 0.25;
  const std::string json = m.ToJson();
  EXPECT_EQ(json.find('{'), 0u);
  EXPECT_NE(json.find("\"sim_time_s\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"total_time_s\":2"), std::string::npos);
  EXPECT_NE(json.find("\"stats_wall_time_s\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_read\":10"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_manipulated\":60"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"max_task_time_s\":0.25"), std::string::npos);
}

TEST(ExecMetricsTest, StatsWallTimeMeasuredWhenStatsOn) {
  SessionOptions options;
  options.engine.collect_stats = true;
  auto session = MakeSession(options);
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // The StatsCollector pass really ran, so its measured wall time is > 0
  // (the modeled stats_time_s is as well — they answer different questions).
  EXPECT_GT(run->metrics.stats_wall_time_s, 0.0);
  EXPECT_GT(run->metrics.stats_time_s, 0.0);
}

TEST(OqlTest, ConsumeExplainPrefixModes) {
  std::string plain = "x = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&plain), oql::ExplainMode::kNone);
  EXPECT_EQ(plain, "x = scan TWTR;");

  std::string explain = "EXPLAIN x = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&explain), oql::ExplainMode::kExplain);
  EXPECT_EQ(explain, "x = scan TWTR;");

  std::string analyze = "  explain analyze\nx = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&analyze),
            oql::ExplainMode::kExplainAnalyze);
  EXPECT_EQ(analyze, "x = scan TWTR;");

  std::string rewrite = "EXPLAIN REWRITE x = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&rewrite),
            oql::ExplainMode::kExplainRewrite);
  EXPECT_EQ(rewrite, "x = scan TWTR;");

  std::string rewrite_lc = "explain rewrite\nx = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&rewrite_lc),
            oql::ExplainMode::kExplainRewrite);
  EXPECT_EQ(rewrite_lc, "x = scan TWTR;");

  // A binding that merely starts with the word is left alone.
  std::string binding = "explained = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&binding), oql::ExplainMode::kNone);
  EXPECT_EQ(binding, "explained = scan TWTR;");

  // Leading comment lines don't hide the keyword.
  std::string commented = "# banner\n# more\nEXPLAIN ANALYZE x = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&commented),
            oql::ExplainMode::kExplainAnalyze);
  EXPECT_EQ(commented, "x = scan TWTR;");
}

TEST(OqlTest, ConsumeShowPrefixKinds) {
  uint64_t ticket = 0;

  std::string queries = "SHOW QUERIES;";
  EXPECT_EQ(oql::ConsumeShowPrefix(&queries, &ticket),
            oql::ShowKind::kQueries);
  EXPECT_TRUE(queries.empty());

  std::string stats = "  show server stats";
  EXPECT_EQ(oql::ConsumeShowPrefix(&stats, &ticket),
            oql::ShowKind::kServerStats);
  EXPECT_TRUE(stats.empty());

  std::string profile = "# comment\nSHOW PROFILE 42;";
  EXPECT_EQ(oql::ConsumeShowPrefix(&profile, &ticket),
            oql::ShowKind::kProfile);
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(ticket, 42u);

  // Not SHOW statements: bindings, trailing garbage, missing ticket.
  std::string binding = "shower = scan TWTR;";
  EXPECT_EQ(oql::ConsumeShowPrefix(&binding, &ticket), oql::ShowKind::kNone);
  EXPECT_EQ(binding, "shower = scan TWTR;");

  std::string garbage = "show queries extra";
  EXPECT_EQ(oql::ConsumeShowPrefix(&garbage, &ticket), oql::ShowKind::kNone);
  EXPECT_EQ(garbage, "show queries extra");

  std::string no_ticket = "show profile;";
  EXPECT_EQ(oql::ConsumeShowPrefix(&no_ticket, &ticket),
            oql::ShowKind::kNone);
  EXPECT_EQ(no_ticket, "show profile;");
}

// --- EXPLAIN REWRITE --------------------------------------------------------

// Warms a session's view store with two queries, then renders EXPLAIN
// REWRITE for a query that can reuse the first one's views. The engine
// configuration is a parameter precisely so tests can prove it does NOT
// matter: the rewrite search is serial and engine-independent.
std::string WarmExplainRewrite(int threads, bool vectorized, bool pipelined) {
  SessionOptions options;
  options.engine.num_threads = threads;
  options.engine.vectorized = vectorized;
  options.engine.pipelined = pipelined;
  auto session = MakeSession(options);
  auto warm1 = session->Run(
      "w = scan TWTR | project user_id, retweets;");
  EXPECT_TRUE(warm1.ok()) << warm1.status().ToString();
  auto warm2 = session->Run(
      "v = scan TWTR | groupby user_id count(*) as n;");
  EXPECT_TRUE(warm2.ok()) << warm2.status().ToString();
  auto text = session->ExplainRewrite(
      "q = scan TWTR | project user_id, retweets;");
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return text.ok() ? *text : std::string();
}

TEST(SessionTest, ExplainRewriteGoldenShape) {
  const std::string masked = MaskNumbers(WarmExplainRewrite(1, false, false));
  // Pins the whole report: header, per-target decisions (with machine-
  // readable reject codes), and the counts footer.
  const std::string expected =
      "EXPLAIN REWRITE q\n"
      "views in store: #\n"
      "original cost: #s  best cost: #s  improved: yes\n"
      "search: # candidates considered, # enum attempts, # rewrites found\n"
      "[target #] PROJECT\n"
      "  original #s -> best #s  chosen: view(#)  predicted benefit #s\n"
      "    #             optcost=#s  rewrite=#s  accepted\n"
      "    #             optcost=#s  rejected: pruned_by_bound (never "
      "refined)\n"
      "candidates: #  accepted: #  signature_mismatch: #  afk_containment: #"
      "  not_cost_improving: #  pruned_by_bound: #\n";
  EXPECT_EQ(masked, expected);
}

TEST(SessionTest, ExplainRewriteByteIdenticalAcrossEngineConfigs) {
  // {1, 8} threads x {row, batch} x {phased, pipelined}: the decision log
  // and its rendering must be byte-identical — the search never looks at
  // the engine.
  const std::string base = WarmExplainRewrite(1, false, false);
  ASSERT_FALSE(base.empty());
  EXPECT_NE(base.find("accepted"), std::string::npos);
  for (int threads : {1, 8}) {
    for (bool vectorized : {false, true}) {
      for (bool pipelined : {false, true}) {
        EXPECT_EQ(base, WarmExplainRewrite(threads, vectorized, pipelined))
            << "threads=" << threads << " vectorized=" << vectorized
            << " pipelined=" << pipelined;
      }
    }
  }
}

TEST(SessionTest, RewriteDoesNotExecuteOrCreditViews) {
  auto session = MakeSession();
  auto warm = session->Run("w = scan TWTR | project user_id, retweets;");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  const size_t views_before = session->views().size();
  const uint64_t clock_before = session->views().clock();
  auto outcome =
      session->Rewrite("q = scan TWTR | project user_id, retweets;");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->improved);
  EXPECT_FALSE(outcome->decisions.targets.empty());
  // Pure analysis: no new views, no access credit.
  EXPECT_EQ(session->views().size(), views_before);
  EXPECT_EQ(session->views().clock(), clock_before);
}

// --- Run metrics export -----------------------------------------------------

TEST(SessionTest, MetricsJsonCarriesPerJobResidualsAndDecisions) {
  auto session = MakeSession();
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string json = run->MetricsJson();
  EXPECT_EQ(json.find('{'), 0u);
  // Acceptance contract: per-job predicted/observed/residual fields.
  EXPECT_NE(json.find("\"predicted_cost_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"observed_proxy_cost_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"residual_pct\":"), std::string::npos);
  EXPECT_NE(json.find("\"rewrite\":{\"rewritten\":true"), std::string::npos);
  EXPECT_NE(json.find("\"decisions\":{\"candidates\":"), std::string::npos);
  EXPECT_NE(json.find("\"cost_model\":{\"classes\":["), std::string::npos);
  EXPECT_NE(json.find("\"op_class\":\"GROUPBY\""), std::string::npos);
  EXPECT_NE(json.find("\"registry_delta\":{\"counters\":{"),
            std::string::npos);
  // The run's registry delta saw this run's jobs.
  EXPECT_NE(json.find("\"engine.jobs\":"), std::string::npos);
}

TEST(SessionTest, MetricsPrometheusExposition) {
  auto session = MakeSession();
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string text = run->MetricsPrometheus();
  EXPECT_NE(text.find("# TYPE opd_engine_jobs counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("opd_engine_jobs "), std::string::npos);
  EXPECT_NE(text.find("# TYPE opd_costmodel_job_residual_pct summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("opd_costmodel_job_residual_pct_count "),
            std::string::npos);
}

TEST(SessionTest, MetricsDeltaIsPerRunNotCumulative) {
  auto session = MakeSession();
  const std::string q = "counts = scan TWTR | groupby user_id count(*) as n;";
  auto first = session->Run(q, RunOptions{.rewrite = false});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = session->Run(q, RunOptions{.rewrite = false});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Identical work => identical per-run counter deltas, even though the
  // global registry doubled.
  ASSERT_EQ(first->metrics_delta.counters.count("engine.jobs"), 1u);
  EXPECT_EQ(first->metrics_delta.counters.at("engine.jobs"),
            second->metrics_delta.counters.at("engine.jobs"));
  EXPECT_EQ(first->metrics_delta.counters.at("engine.bytes_read"),
            second->metrics_delta.counters.at("engine.bytes_read"));
}

TEST(SessionTest, CostDriftsTrackExecutedOperatorClasses) {
  auto session = MakeSession();
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;",
      RunOptions{.rewrite = false});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_FALSE(run->cost_drifts.empty());
  bool saw_groupby = false;
  for (const auto& d : run->cost_drifts) {
    if (d.op_class == "GROUPBY") {
      saw_groupby = true;
      EXPECT_EQ(d.samples, 1u);
    }
  }
  EXPECT_TRUE(saw_groupby);
}

}  // namespace
}  // namespace opd
