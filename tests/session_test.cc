// Tests for the opd::Session facade: wiring, Run over OQL and plans, option
// consolidation, the EXPLAIN ANALYZE rendering (golden shape), and the
// ExecMetrics serializations shared by bench --json and the trace export.

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "exec/metrics.h"
#include "oql/parser.h"
#include "session/session.h"
#include "udf/builtin_udfs.h"
#include "workload/datagen.h"

namespace opd {
namespace {

std::unique_ptr<Session> MakeSession(SessionOptions options = {}) {
  auto session = Session::Create(options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  workload::DataGenConfig data;
  data.n_tweets = 500;
  data.n_checkins = 200;
  data.n_locations = 50;
  storage::TablePtr twtr = workload::GenerateTwitterLog(data);
  EXPECT_TRUE(udf::RegisterBuiltinUdfs(&(*session)->udfs()).ok());
  EXPECT_TRUE((*session)->RegisterTable(twtr, {"tweet_id"}).ok());
  return std::move(session).value();
}

TEST(SessionTest, CreateWiresTheWholeStack) {
  auto session = MakeSession();
  EXPECT_TRUE(session->catalog().Has("TWTR"));
  EXPECT_GE(session->udfs().size(), 10u);
  EXPECT_EQ(session->views().size(), 0u);
}

TEST(SessionTest, RunOqlReturnsTableMetricsAndJobs) {
  auto session = MakeSession();
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_NE(run->table, nullptr);
  EXPECT_GT(run->table->num_rows(), 0u);
  EXPECT_GT(run->metrics.jobs, 0);
  EXPECT_EQ(static_cast<int>(run->jobs.size()), run->metrics.jobs);
  EXPECT_TRUE(run->rewritten);
  EXPECT_EQ(run->trace, nullptr);  // tracing is off by default
  // Executing retained the job outputs as opportunistic views.
  EXPECT_GT(session->views().size(), 0u);
}

TEST(SessionTest, RunParseErrorsPropagate) {
  auto session = MakeSession();
  auto run = session->Run("this is not OQL");
  EXPECT_FALSE(run.ok());
}

TEST(SessionTest, TracingProducesQueryRootedSpans) {
  SessionOptions options;
  options.obs.tracing = true;
  auto session = MakeSession(options);
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;",
      RunOptions{.rewrite = false});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_NE(run->trace, nullptr);
  auto spans = run->trace->Sorted();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].name.rfind("query:", 0), 0u);
  // Every other span hangs off the query root (transitively).
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_NE(spans[i].parent, 0u) << spans[i].name;
  }
}

TEST(SessionTest, ObsOptionsMirrorIntoEngineOptions) {
  SessionOptions options;
  options.obs.metrics = false;
  options.obs.trace_tasks = false;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->options().engine.metrics);
  EXPECT_FALSE((*session)->options().engine.trace_tasks);
}

// Masks every number (and byte-unit suffix) so the golden pins the layout
// while times/bytes stay free to vary run to run.
std::string MaskNumbers(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size();) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      while (i < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.')) {
        ++i;
      }
      if (i + 1 < s.size() && (s[i] == 'K' || s[i] == 'M' || s[i] == 'G') &&
          s[i + 1] == 'B') {
        i += 2;
      } else if (i < s.size() && s[i] == 'B') {
        ++i;
      }
      out += '#';
      continue;
    }
    out += s[i++];
  }
  return out;
}

TEST(SessionTest, ExplainAnalyzeGoldenShape) {
  auto session = MakeSession();
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;",
      RunOptions{.rewrite = false});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string masked =
      MaskNumbers(run->ExplainAnalyze(exec::AnalyzeOptions{.show_wall = false}));
  auto pad = [](std::string s) {
    if (s.size() < 44) s.append(44 - s.size(), ' ');
    return s;
  };
  // Pipelined execution (the default) reports fused pipeline tasks: "#p".
  const std::string expected =
      pad("GROUPBY(user_id)") +
      "  [job #] time=#s rows=# read=# shuffled=# written=# tasks=#p+#r\n" +
      pad("  SCAN(TWTR)") + "  (scan)\n" +
      "jobs: #  sim time: #s (+stats #s)  read: #  shuffled: #  written: #  "
      "views: #\n";
  EXPECT_EQ(masked, expected);
}

TEST(SessionTest, ExplainAnalyzePhasedModeReportsMapTasks) {
  SessionOptions options;
  options.engine.pipelined = false;
  auto session = MakeSession(options);
  auto run = session->Run(
      "counts = scan TWTR | groupby user_id count(*) as n;",
      RunOptions{.rewrite = false});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string masked =
      MaskNumbers(run->ExplainAnalyze(exec::AnalyzeOptions{.show_wall = false}));
  EXPECT_NE(masked.find("tasks=#m+#r"), std::string::npos) << masked;
  EXPECT_EQ(masked.find("#p"), std::string::npos) << masked;
}

TEST(SessionTest, ExplainAnalyzeOverOqlIncludesWallStats) {
  auto session = MakeSession();
  auto text = session->ExplainAnalyze(
      "r = scan TWTR | project user_id, retweets | "
      "filter retweets > 1;");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[job "), std::string::npos);
  EXPECT_NE(text->find("wall="), std::string::npos);
  EXPECT_NE(text->find("straggler="), std::string::npos);
}

TEST(ExecMetricsTest, ToStringIncludesMaxTaskTime) {
  exec::ExecMetrics m;
  m.sim_time_s = 2.0;
  m.max_task_time_s = 0.125;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("max_task="), std::string::npos);
  EXPECT_NE(s.find("0.125"), std::string::npos);
}

TEST(ExecMetricsTest, ToJsonHasEveryField) {
  exec::ExecMetrics m;
  m.sim_time_s = 1.5;
  m.stats_time_s = 0.5;
  m.bytes_read = 10;
  m.bytes_shuffled = 20;
  m.bytes_written = 30;
  m.jobs = 2;
  m.views_created = 1;
  m.max_task_time_s = 0.25;
  const std::string json = m.ToJson();
  EXPECT_EQ(json.find('{'), 0u);
  EXPECT_NE(json.find("\"sim_time_s\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"total_time_s\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_read\":10"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_manipulated\":60"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"max_task_time_s\":0.25"), std::string::npos);
}

TEST(OqlTest, ConsumeExplainPrefixModes) {
  std::string plain = "x = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&plain), oql::ExplainMode::kNone);
  EXPECT_EQ(plain, "x = scan TWTR;");

  std::string explain = "EXPLAIN x = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&explain), oql::ExplainMode::kExplain);
  EXPECT_EQ(explain, "x = scan TWTR;");

  std::string analyze = "  explain analyze\nx = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&analyze),
            oql::ExplainMode::kExplainAnalyze);
  EXPECT_EQ(analyze, "x = scan TWTR;");

  // A binding that merely starts with the word is left alone.
  std::string binding = "explained = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&binding), oql::ExplainMode::kNone);
  EXPECT_EQ(binding, "explained = scan TWTR;");

  // Leading comment lines don't hide the keyword.
  std::string commented = "# banner\n# more\nEXPLAIN ANALYZE x = scan TWTR;";
  EXPECT_EQ(oql::ConsumeExplainPrefix(&commented),
            oql::ExplainMode::kExplainAnalyze);
  EXPECT_EQ(commented, "x = scan TWTR;");
}

}  // namespace
}  // namespace opd
