// Unit tests for common utilities: Status/Result, RNG, hashing, strings.

#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace opd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_NE(s.ToString().find("NotFound"), std::string::npos);
}

TEST(StatusTest, AllConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Status UseResult(int x, int* out) {
  OPD_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  *out = doubled;
  return Status::OK();
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseResult(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseResult(-5, &out).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 300);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(9);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = rng.Zipf(100, 1.0);
    EXPECT_LT(r, 100u);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, WeightedFollowsWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.8, 0.1, 0.1};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) counts[rng.Weighted(weights)]++;
  EXPECT_GT(counts[0], counts[1] + counts[2]);
}

TEST(HashTest, CombineAndStrings) {
  uint64_t h1 = 1, h2 = 1;
  HashCombine(&h1, 42);
  HashCombine(&h2, 42);
  EXPECT_EQ(h1, h2);
  HashCombine(&h2, 43);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
}

TEST(StringUtilTest, Split) {
  auto parts = SplitString("a;b;;c", ';');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(SplitString("", ';').size(), 1u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, Tokenize) {
  auto words = TokenizeWords("Hello, World! 123 foo-bar");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[0], "hello");
  EXPECT_EQ(words[1], "world");
  EXPECT_EQ(words[2], "123");
  EXPECT_EQ(words[3], "foo");
  EXPECT_EQ(words[4], "bar");
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("...!!!").empty());
}

TEST(StringUtilTest, StartsWithAndLower) {
  EXPECT_TRUE(StartsWith("views/run0", "views/"));
  EXPECT_FALSE(StartsWith("vie", "views/"));
  EXPECT_EQ(ToLowerAscii("AbC"), "abc");
}

}  // namespace
}  // namespace opd
