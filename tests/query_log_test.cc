// obs::QueryLog: ring bounds, JSONL sink, slow-query capture/eviction, and
// the Histogram quantile/merge extensions feeding the SLO gauges.

#include "obs/query_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace opd::obs {
namespace {

QueryRecord MakeRecord(uint64_t ticket, const std::string& tenant = "t") {
  QueryRecord rec;
  rec.tenant = tenant;
  rec.ticket = ticket;
  rec.admission_epoch = ticket - 1;
  rec.publish_epoch = ticket;  // one epoch bump per completion
  rec.rows_in = 100 * ticket;
  rec.rows_out = ticket;
  rec.jobs = 1;
  rec.query = "q = scan T;";
  return rec;
}

TEST(QueryLogTest, RingKeepsNewestAndCountsDropped) {
  QueryLog::Options options;
  options.capacity = 4;
  QueryLog log(options);
  for (uint64_t t = 1; t <= 10; ++t) log.Append(MakeRecord(t));

  const auto records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest first, and only the newest four survive the overwrites.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i]->ticket, 7 + i);
  }
  const QueryLog::Stats stats = log.stats();
  EXPECT_EQ(stats.appended, 10u);
  EXPECT_EQ(stats.dropped, 6u);

  EXPECT_NE(log.Find(9), nullptr);
  EXPECT_EQ(log.Find(9)->rows_out, 9u);
  EXPECT_EQ(log.Find(3), nullptr);  // overwritten
}

TEST(QueryLogTest, JsonlSinkWritesOneLinePerRecord) {
  const std::string path = ::testing::TempDir() + "/opd_query_log.jsonl";
  std::remove(path.c_str());
  {
    QueryLog::Options options;
    options.capacity = 2;  // sink keeps everything even as the ring drops
    options.jsonl_path = path;
    QueryLog log(options);
    for (uint64_t t = 1; t <= 5; ++t) log.Append(MakeRecord(t));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"tenant\":\"t\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 5u);
  std::remove(path.c_str());
}

TEST(QueryLogTest, RecordJsonCarriesRewriteCountsAndError) {
  QueryRecord rec = MakeRecord(7);
  rec.rw_candidates = 3;
  rec.rw_accepted = 1;
  rec.status = "error";
  rec.error = "boom";
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"candidates\":3"), std::string::npos);
  EXPECT_NE(json.find("\"accepted\":1"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"boom\""), std::string::npos);
}

SlowQueryProfile MakeProfile(uint64_t ticket, size_t explain_bytes) {
  SlowQueryProfile p;
  p.ticket = ticket;
  p.tenant = "t";
  p.explain_analyze.assign(explain_bytes, 'x');
  return p;
}

TEST(QueryLogTest, SlowCaptureEvictsOldestUnderByteBudget) {
  QueryLog::Options options;
  options.capacity = 8;
  options.slow_threshold_s = 0.0;
  // Budget fits about two profiles of 1 KiB payload each.
  options.slow_capture_budget_bytes = 2 * (sizeof(SlowQueryProfile) + 1 + 1024);
  QueryLog log(options);
  EXPECT_TRUE(log.ShouldCapture(0.0));

  log.CaptureSlow(MakeProfile(1, 1024));
  log.CaptureSlow(MakeProfile(2, 1024));
  log.CaptureSlow(MakeProfile(3, 1024));  // evicts ticket 1

  EXPECT_FALSE(log.FindProfile(1).has_value());
  EXPECT_TRUE(log.FindProfile(2).has_value());
  EXPECT_TRUE(log.FindProfile(3).has_value());
  const QueryLog::Stats stats = log.stats();
  EXPECT_EQ(stats.slow_captured, 3u);
  EXPECT_EQ(stats.slow_evicted, 1u);
  EXPECT_LE(stats.capture_bytes, options.slow_capture_budget_bytes);
}

TEST(QueryLogTest, ThresholdSemantics) {
  QueryLog::Options off;
  off.slow_threshold_s = -1.0;
  EXPECT_FALSE(QueryLog(off).ShouldCapture(1e9));

  QueryLog::Options some;
  some.slow_threshold_s = 0.5;
  QueryLog log(some);
  EXPECT_FALSE(log.ShouldCapture(0.4));
  EXPECT_TRUE(log.ShouldCapture(0.5));
}

TEST(QueryLogTest, RegistryCountersTrackAppendsAndCaptures) {
  MetricRegistry registry;
  QueryLog::Options options;
  options.capacity = 2;
  options.slow_threshold_s = 0.0;
  options.registry = &registry;
  QueryLog log(options);
  for (uint64_t t = 1; t <= 3; ++t) log.Append(MakeRecord(t));
  log.CaptureSlow(MakeProfile(3, 16));

  EXPECT_EQ(registry.counter("server.querylog.appended").value(), 3u);
  EXPECT_EQ(registry.counter("server.querylog.dropped").value(), 1u);
  EXPECT_EQ(registry.counter("server.querylog.slow_captured").value(), 1u);
  EXPECT_GT(registry.gauge("server.querylog.capture_bytes").value(), 0.0);
}

// Readers never take the append mutex; this is the pattern the TSan lane
// exercises (scripts/check.sh runs this binary under -fsanitize=thread).
TEST(QueryLogStressTest, ConcurrentAppendAndSnapshot) {
  QueryLog::Options options;
  options.capacity = 16;
  QueryLog log(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 200;
  std::atomic<bool> done{false};
  std::thread reader([&log, &done] {
    size_t snapshots = 0;
    while (!done.load(std::memory_order_acquire) || snapshots == 0) {
      const auto records = log.Snapshot();
      EXPECT_LE(records.size(), 16u);
      for (const auto& rec : records) {
        // Records are immutable: a torn read would show a half-filled one.
        EXPECT_EQ(rec->rows_in, 100 * rec->ticket);
      }
      ++snapshots;
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        log.Append(MakeRecord(
            static_cast<uint64_t>(w) * kPerWriter + i + 1));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(log.stats().appended,
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(log.Snapshot().size(), 16u);
}

// --- Histogram quantile/merge (the SLO sketch extensions) -----------------

TEST(HistogramQuantileTest, EmptyReturnsNaN) {
  Histogram h;
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
}

TEST(HistogramQuantileTest, QuantilesAreMonotoneAndClamped) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  double prev = h.Quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.Quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
  EXPECT_GE(h.Quantile(0.0), h.min());
  EXPECT_LE(h.Quantile(1.0), h.max());
  // p50 of 1..100 lands within the power-of-two bucket around the median.
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 128.0);
}

TEST(HistogramQuantileTest, SingleValueQuantileIsExact) {
  Histogram h;
  h.Observe(0.25);
  // Clamping to observed min/max makes every quantile exact here.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.25);
}

TEST(HistogramQuantileTest, MergeFromFoldsMassAndExtrema) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10; ++i) a.Observe(1.0);
  for (int i = 0; i < 10; ++i) b.Observe(64.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0 + 640.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 64.0);
  // The median straddles the two populations; p99 sits in the upper one.
  EXPECT_GT(a.Quantile(0.99), 32.0);
  EXPECT_LT(a.Quantile(0.25), 2.0);

  Histogram empty;
  a.MergeFrom(empty);  // no-op
  EXPECT_EQ(a.count(), 20u);

  Histogram into_empty;
  into_empty.MergeFrom(a);
  EXPECT_EQ(into_empty.count(), 20u);
  EXPECT_DOUBLE_EQ(into_empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(into_empty.max(), 64.0);
}

}  // namespace
}  // namespace opd::obs
