// Observability subsystem tests: TraceSpan/Trace recording and Chrome JSON
// export, MetricRegistry correctness under concurrency, and the span-tree
// determinism contract (identical structure at every thread count, identical
// results with tracing on or off).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "workload/scenarios.h"

namespace opd::obs {
namespace {

TEST(TraceTest, SpansNestAndRecordOnEnd) {
  Trace trace;
  {
    TraceSpan query(&trace, 0, "query:q", "query");
    EXPECT_EQ(trace.size(), 0u);  // nothing recorded until End()
    TraceSpan job(&trace, query.id(), "job:JOIN", "job");
    job.AddArg("rows_out", uint64_t{42});
    job.End();
    EXPECT_EQ(trace.size(), 1u);
  }
  ASSERT_EQ(trace.size(), 2u);

  std::vector<SpanRecord> spans = trace.Sorted();
  EXPECT_EQ(spans[0].name, "query:q");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].name, "job:JOIN");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  ASSERT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].first, "rows_out");
  EXPECT_EQ(spans[1].args[0].second, "42");
}

TEST(TraceTest, NullTraceSpanIsInert) {
  TraceSpan span(nullptr, 0, "ignored");
  EXPECT_FALSE(span);
  span.AddArg("k", int64_t{1});
  span.End();  // must not crash
  TraceSpan defaulted;
  EXPECT_FALSE(defaulted);
}

TEST(TraceTest, EndIsIdempotent) {
  Trace trace;
  TraceSpan span(&trace, 0, "s");
  span.End();
  span.End();
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceTest, TracedParallelForPreallocatesDeterministicIds) {
  // The task-id block must not depend on thread interleaving: run the same
  // wave with 1 and 8 threads and require identical structure.
  auto run = [](int threads) {
    Trace trace;
    ThreadPool pool(threads);
    TraceSpan root(&trace, 0, "wave");
    Status st = TracedParallelFor(&pool, 16, &trace, root.id(), "task",
                                  [](size_t) { return Status::OK(); });
    EXPECT_TRUE(st.ok());
    root.End();
    return trace.StructureString();
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(TraceTest, ChromeJsonShape) {
  Trace trace;
  {
    TraceSpan span(&trace, 0, "query:\"quoted\"", "query");
    span.AddArg("note", std::string_view("a\nb"));
  }
  const std::string json = trace.ToChromeJson();
  // Structural sanity: the document is one object with a traceEvents array
  // of complete ("X") events, and special characters are escaped.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query:\\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("a\\nb"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one-line document
  // Braces and brackets balance.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceTest, WriteChromeTraceFileMergesTraces) {
  Trace a, b;
  { TraceSpan s(&a, 0, "qa", "query"); }
  { TraceSpan s(&b, 0, "qb", "query"); }
  const std::string path = ::testing::TempDir() + "/opd_obs_trace.json";
  ASSERT_TRUE(WriteChromeTraceFile(path, {&a, &b}).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"qa\""), std::string::npos);
  EXPECT_NE(json.find("\"qb\""), std::string::npos);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  std::remove(path.c_str());
}

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricRegistry registry;
  registry.counter("t.c").Inc(3);
  registry.counter("t.c").Inc();
  EXPECT_EQ(registry.counter("t.c").value(), 4u);

  registry.gauge("t.g").Set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("t.g").value(), 2.5);

  Histogram& h = registry.histogram("t.h");
  h.Observe(1.0);
  h.Observe(4.0);
  h.Observe(0.25);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.25 / 3);

  registry.ResetAll();
  EXPECT_EQ(registry.counter("t.c").value(), 0u);
  EXPECT_EQ(registry.histogram("t.h").count(), 0u);
}

TEST(MetricsTest, ConcurrentIncrementsNeverLoseEvents) {
  MetricRegistry registry;
  ThreadPool pool(8);
  constexpr size_t kTasks = 64;
  constexpr int kPerTask = 1000;
  Status st = ParallelFor(&pool, kTasks, [&](size_t) {
    // Mix registration (name lookup under the mutex) with updates to
    // exercise both paths concurrently.
    Counter& c = registry.counter("concurrent.c");
    Histogram& h = registry.histogram("concurrent.h");
    for (int i = 0; i < kPerTask; ++i) {
      c.Inc();
      h.Observe(static_cast<double>(i % 7) + 0.5);
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(registry.counter("concurrent.c").value(), kTasks * kPerTask);
  EXPECT_EQ(registry.histogram("concurrent.h").count(), kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(registry.histogram("concurrent.h").min(), 0.5);
  EXPECT_DOUBLE_EQ(registry.histogram("concurrent.h").max(), 6.5);
}

TEST(MetricsTest, JsonAndStringDumps) {
  MetricRegistry registry;
  registry.counter("a.b").Inc(7);
  registry.gauge("c.d").Set(1.5);
  registry.histogram("e.f").Observe(2.0);
  const std::string json = registry.ToJson();
  EXPECT_EQ(json.find('{'), 0u);
  EXPECT_NE(json.find("\"a.b\":7"), std::string::npos);
  EXPECT_NE(json.find("\"c.d\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"e.f\""), std::string::npos);
  const std::string text = registry.ToString();
  EXPECT_NE(text.find("a.b=7"), std::string::npos);
}

// --- MetricsSnapshot --------------------------------------------------------

TEST(MetricsSnapshotTest, DiffSubtractsCountersAndDropsZeroDeltas) {
  MetricRegistry registry;
  registry.counter("snap.before").Inc(10);
  registry.counter("snap.quiet").Inc(3);
  MetricsSnapshot base = MetricsSnapshot::Capture(registry);

  registry.counter("snap.before").Inc(5);
  registry.counter("snap.fresh").Inc(2);  // registered after the base capture
  MetricsSnapshot after = MetricsSnapshot::Capture(registry);
  MetricsSnapshot diff = after.DiffFrom(base);

  EXPECT_EQ(diff.counters.at("snap.before"), 5u);
  EXPECT_EQ(diff.counters.at("snap.fresh"), 2u);
  // Untouched counters must not appear in the delta at all.
  EXPECT_EQ(diff.counters.count("snap.quiet"), 0u);
}

TEST(MetricsSnapshotTest, GaugesAreLevelsNotAccumulations) {
  MetricRegistry registry;
  registry.gauge("snap.level").Set(7.0);
  MetricsSnapshot base = MetricsSnapshot::Capture(registry);
  registry.gauge("snap.level").Set(3.0);
  MetricsSnapshot diff = MetricsSnapshot::Capture(registry).DiffFrom(base);
  // A gauge reports where it stands now (3), not a 3-7=-4 "delta".
  EXPECT_DOUBLE_EQ(diff.gauges.at("snap.level"), 3.0);
}

TEST(MetricsSnapshotTest, HistogramDiffCarriesWindowMassAndLifetimeBounds) {
  MetricRegistry registry;
  registry.histogram("snap.h").Observe(100.0);  // pre-window outlier
  MetricsSnapshot base = MetricsSnapshot::Capture(registry);

  registry.histogram("snap.h").Observe(1.0);
  registry.histogram("snap.h").Observe(2.0);
  registry.histogram("snap.quiet_h").Observe(9.0);
  MetricsSnapshot mid = MetricsSnapshot::Capture(registry);
  MetricsSnapshot diff = mid.DiffFrom(base);

  const MetricsSnapshot::HistogramStat& h = diff.histograms.at("snap.h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 3.0);
  // Min/max are lifetime bounds (the sketch cannot un-observe), so the
  // pre-window 100 still shows.
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_EQ(diff.histograms.at("snap.quiet_h").count, 1u);

  // A second window with no observations drops the histogram entirely.
  MetricsSnapshot quiet = MetricsSnapshot::Capture(registry).DiffFrom(mid);
  EXPECT_EQ(quiet.histograms.count("snap.h"), 0u);
  EXPECT_TRUE(quiet.empty());
}

TEST(MetricsSnapshotTest, JsonShape) {
  MetricRegistry registry;
  registry.counter("a.b").Inc(7);
  registry.gauge("c.d").Set(1.5);
  registry.histogram("e.f").Observe(2.0);
  const std::string json = MetricsSnapshot::Capture(registry).ToJson();
  EXPECT_EQ(json.find("{\"counters\":{"), 0u);
  EXPECT_NE(json.find("\"a.b\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"c.d\":1.5}"), std::string::npos);
  EXPECT_NE(json.find("\"e.f\":{\"count\":1,\"sum\":2,"), std::string::npos);
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

TEST(MetricsSnapshotTest, PrometheusExposition) {
  MetricRegistry registry;
  registry.counter("engine.jobs").Inc(4);
  registry.gauge("costmodel.udf.drift").Set(12.5);
  registry.histogram("costmodel.job.residual_pct").Observe(8.0);
  const std::string text = MetricsSnapshot::Capture(registry).ToPrometheus();
  // Dots mangle to underscores under the default "opd" prefix; counters and
  // gauges get a value line, histograms a summary plus _min/_max.
  EXPECT_NE(text.find("# TYPE opd_engine_jobs counter\n"), std::string::npos);
  EXPECT_NE(text.find("opd_engine_jobs 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE opd_costmodel_udf_drift gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("opd_costmodel_udf_drift 12.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE opd_costmodel_job_residual_pct summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("opd_costmodel_job_residual_pct_count 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("opd_costmodel_job_residual_pct_sum 8\n"),
            std::string::npos);
  EXPECT_NE(text.find("opd_costmodel_job_residual_pct_max 8\n"),
            std::string::npos);
  // Custom prefix is honoured.
  const std::string custom =
      MetricsSnapshot::Capture(registry).ToPrometheus("acme");
  EXPECT_NE(custom.find("acme_engine_jobs 4\n"), std::string::npos);
}

TEST(MetricsSnapshotTest, PrometheusLabelsAndHelp) {
  MetricRegistry registry;
  registry.counter("server.queries.completed").Inc(3);
  registry.histogram("server.slo.latency_s").Observe(0.5);

  PrometheusOptions options;
  options.labels = {{"tenant", "ana"}, {"shard", "0"}};
  options.help["server.queries.completed"] = "Completed queries";
  const std::string text =
      MetricsSnapshot::Capture(registry).ToPrometheus(options);
  EXPECT_NE(text.find("# HELP opd_server_queries_completed "
                      "Completed queries\n"),
            std::string::npos);
  // The label block lands on every sample, summaries included.
  EXPECT_NE(text.find("opd_server_queries_completed"
                      "{tenant=\"ana\",shard=\"0\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("opd_server_slo_latency_s_count"
                      "{tenant=\"ana\",shard=\"0\"} 1\n"),
            std::string::npos);
}

// Regression: exposition-format escaping of `\`, `"`, and newline. Before
// this, a tenant name with a newline corrupted every sample after it.
TEST(MetricsSnapshotTest, PrometheusEscapesLabelValuesAndHelp) {
  EXPECT_EQ(PrometheusEscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(PrometheusEscapeHelp("line1\nline2 \\ \"quoted\""),
            "line1\\nline2 \\\\ \"quoted\"");

  MetricRegistry registry;
  registry.counter("server.queries.completed").Inc(1);
  PrometheusOptions options;
  options.labels = {{"tenant", "eva\nl \"x\" \\"}};
  options.help["server.queries.completed"] = "multi\nline";
  const std::string text =
      MetricsSnapshot::Capture(registry).ToPrometheus(options);
  EXPECT_NE(text.find("{tenant=\"eva\\nl \\\"x\\\" \\\\\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP opd_server_queries_completed multi\\nline\n"),
            std::string::npos);
  // The raw newline must not appear inside any line of the exposition.
  EXPECT_EQ(text.find("eva\nl"), std::string::npos);
}

// --- Determinism across thread counts --------------------------------------

// A query slice covering every traced shape: map-only ops, a shuffle join,
// a shuffle aggregation, and a UDF pipeline.
constexpr const char* kWorkloadOql = R"(
extract = scan TWTR | project user_id, tweet_text, mention_user;
wine    = extract | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5);
counts  = scan TWTR | groupby user_id count(*) as n;
result  = join wine counts on user_id = user_id;
)";

struct TracedRun {
  std::string structure;
  std::string chrome_json;
  std::vector<storage::Row> rows;
  uint64_t bytes_read = 0;
};

TracedRun RunTraced(int num_threads, bool vectorized, bool tracing,
                    bool pipelined = true) {
  workload::TestBedConfig config;
  config.data.n_tweets = 600;
  config.data.n_checkins = 300;
  config.data.n_locations = 60;
  config.calibrate_udfs = false;
  config.session.engine.num_threads = num_threads;
  config.session.engine.vectorized = vectorized;
  config.session.engine.pipelined = pipelined;
  config.session.obs.tracing = tracing;
  auto bed = workload::TestBed::Create(config);
  EXPECT_TRUE(bed.ok()) << bed.status().ToString();
  auto run = (*bed)->session().Run(kWorkloadOql);
  EXPECT_TRUE(run.ok()) << run.status().ToString();

  TracedRun out;
  if (run->trace != nullptr) {
    out.structure = run->trace->StructureString();
    out.chrome_json = run->trace->ToChromeJson();
  }
  out.rows = run->table->rows();
  std::sort(out.rows.begin(), out.rows.end(),
            [](const storage::Row& a, const storage::Row& b) {
              for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                if (a[i] < b[i]) return true;
                if (b[i] < a[i]) return false;
              }
              return a.size() < b.size();
            });
  out.bytes_read = run->metrics.bytes_read;
  return out;
}

TEST(TraceDeterminismTest, SpanStructureInvariantAcrossThreadCountsRowMode) {
  TracedRun one = RunTraced(1, /*vectorized=*/false, /*tracing=*/true);
  TracedRun eight = RunTraced(8, /*vectorized=*/false, /*tracing=*/true);
  ASSERT_FALSE(one.structure.empty());
  EXPECT_EQ(one.structure, eight.structure);
  EXPECT_EQ(one.rows, eight.rows);
}

TEST(TraceDeterminismTest, SpanStructureInvariantAcrossThreadCountsBatchMode) {
  TracedRun one = RunTraced(1, /*vectorized=*/true, /*tracing=*/true);
  TracedRun eight = RunTraced(8, /*vectorized=*/true, /*tracing=*/true);
  ASSERT_FALSE(one.structure.empty());
  EXPECT_EQ(one.structure, eight.structure);
  EXPECT_EQ(one.rows, eight.rows);
}

TEST(TraceDeterminismTest, ResultsIdenticalWithTracingOnOrOff) {
  TracedRun off = RunTraced(4, /*vectorized=*/false, /*tracing=*/false);
  TracedRun on = RunTraced(4, /*vectorized=*/false, /*tracing=*/true);
  if (std::getenv("OPD_TRACE") == nullptr) {
    // (OPD_TRACE=1 — the scripts/check.sh traced pass — force-enables
    // tracing in TestBed, so "off" only stays off without the override.)
    EXPECT_TRUE(off.structure.empty());
  }
  EXPECT_FALSE(on.structure.empty());
  EXPECT_EQ(off.rows, on.rows);
  EXPECT_EQ(off.bytes_read, on.bytes_read);
}

TEST(TraceDeterminismTest, ChromeJsonShapeUnderPipelinedExecution) {
  // End-to-end golden shape for the trace file a pipelined run exports: the
  // fused map work records "pipeline" phase spans (not the phased engine's
  // "map"), shuffles still record "reduce", and the document stays a single
  // balanced traceEvents object.
  TracedRun run = RunTraced(4, /*vectorized=*/true, /*tracing=*/true,
                            /*pipelined=*/true);
  const std::string& json = run.chrome_json;
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // (UDF stages run their own runner and keep "map" even when the engine
  // pipelines, so only the presence of "pipeline" is asserted here.)
  EXPECT_NE(json.find("\"name\":\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"reduce\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query:result\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // The phased fallback labels the same work "map".
  TracedRun phased = RunTraced(4, /*vectorized=*/true, /*tracing=*/true,
                               /*pipelined=*/false);
  EXPECT_NE(phased.chrome_json.find("\"name\":\"map\""), std::string::npos);
  EXPECT_EQ(phased.chrome_json.find("\"name\":\"pipeline\""),
            std::string::npos);
  EXPECT_EQ(run.rows, phased.rows);  // engine mode never changes results
}

}  // namespace
}  // namespace opd::obs
