// Tests for the OQL lexer and parser (the HiveQL stand-in front end).

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "oql/lexer.h"
#include "oql/parser.h"
#include "oql/printer.h"
#include "plan/annotate.h"
#include "plan/fingerprint.h"
#include "storage/dfs.h"
#include "udf/builtin_udfs.h"
#include "workload/queries.h"

namespace opd::oql {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("a = scan T | filter x > 1.5;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kAssign);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kPipe);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kCmp);
  EXPECT_EQ((*tokens)[8].text, "1.5");
  EXPECT_EQ((*tokens)[9].kind, TokenKind::kSemi);
  EXPECT_EQ((*tokens)[10].kind, TokenKind::kEnd);
}

TEST(LexerTest, StringsAndComments) {
  auto tokens = Lex("# a comment\nx = \"wine_bar\";  # trailing");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[2].text, "wine_bar");
  EXPECT_EQ((*tokens)[0].line, 2);
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Lex("< <= > >= == !=");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kCmp);
  }
}

TEST(LexerTest, NegativeNumbers) {
  auto tokens = Lex("-1.5 -2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "-1.5");
  EXPECT_EQ((*tokens)[1].text, "-2");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
}

TEST(LexerTest, LineColumnTracking) {
  auto tokens = Lex("a\n  bb");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

// --- Parser -------------------------------------------------------------------

TEST(ParserTest, SimplePipeline) {
  auto plan = ParseQuery("q = scan TWTR | project user_id, tweet_text;");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->root()->kind, plan::OpKind::kProject);
  EXPECT_EQ(plan->root()->project.size(), 2u);
  EXPECT_EQ(plan->root()->children[0]->kind, plan::OpKind::kScan);
  EXPECT_EQ(plan->root()->children[0]->table, "TWTR");
  EXPECT_EQ(plan->name(), "q");
}

TEST(ParserTest, FilterComparisons) {
  auto plan = ParseQuery("q = scan T | filter x >= 3;");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->filter.op, afk::CmpOp::kGe);
  EXPECT_DOUBLE_EQ(plan->root()->filter.literal.ToDouble(), 3.0);
}

TEST(ParserTest, FilterStringEquality) {
  auto plan = ParseQuery("q = scan LAND | filter category == \"wine_bar\";");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->filter.literal.as_string(), "wine_bar");
}

TEST(ParserTest, OpaqueFilter) {
  auto plan = ParseQuery("q = scan T | filter valid_geo(geo);");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->filter.kind, plan::FilterCond::Kind::kOpaque);
  EXPECT_EQ(plan->root()->filter.fn_name, "valid_geo");
}

TEST(ParserTest, GroupByWithAggregates) {
  auto plan = ParseQuery(
      "q = scan T | groupby user_id count(*) as n, sum(score) as total;");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto& group = plan->root()->group;
  ASSERT_EQ(group.keys.size(), 1u);
  ASSERT_EQ(group.aggs.size(), 2u);
  EXPECT_EQ(group.aggs[0].fn, plan::AggFn::kCount);
  EXPECT_EQ(group.aggs[0].output, "n");
  EXPECT_EQ(group.aggs[1].fn, plan::AggFn::kSum);
  EXPECT_EQ(group.aggs[1].input, "score");
}

TEST(ParserTest, UdfWithParams) {
  auto plan = ParseQuery(
      "q = scan TWTR | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5);");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->kind, plan::OpKind::kUdf);
  EXPECT_EQ(plan->root()->udf.udf_name, "UDF_CLASSIFY_WINE_SCORE");
  EXPECT_DOUBLE_EQ(plan->root()->udf.params.at("threshold").ToDouble(), 0.5);
}

TEST(ParserTest, JoinOfBindings) {
  auto program = Parse(
      "a = scan T | project user_id, x;"
      "b = scan T | groupby user_id count(*) as n;"
      "r = join a b on user_id = user_id;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->result_name, "r");
  plan::Plan plan = program->ToPlan();
  EXPECT_EQ(plan.root()->kind, plan::OpKind::kJoin);
  // The two sides share the scan? No — separate scans, but `a` and `b` are
  // the actual bound subplans.
  EXPECT_EQ(plan.root()->children[0].get(),
            program->bindings.at("a").get());
}

TEST(ParserTest, SharedBindingIsSharedSubplan) {
  auto program = Parse(
      "base = scan T | project user_id, score;"
      "hi = base | filter score > 5;"
      "lo = base | filter score < 2;"
      "r = join hi lo on user_id = user_id;");
  ASSERT_TRUE(program.ok());
  plan::Plan plan = program->ToPlan();
  // `base` appears once in the DAG (a shared materialization point, like
  // the paper's multi-stage scripts): scan, base, hi, lo, join.
  EXPECT_EQ(plan.TopoOrder().size(), 5u);
}

TEST(ParserTest, ViewSource) {
  auto plan = ParseQuery("q = view 7 | filter x > 1;");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->children[0]->view_id, 7);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("q = ;").ok());
  EXPECT_FALSE(ParseQuery("q = scan;").ok());
  EXPECT_FALSE(ParseQuery("q = scan T | bogus x;").ok());
  EXPECT_FALSE(ParseQuery("q = scan T | filter x > ;").ok());
  EXPECT_FALSE(ParseQuery("q = scan T | groupby k;").ok());  // no aggregate
  EXPECT_FALSE(ParseQuery("q = scan T").ok());               // missing ';'
  EXPECT_FALSE(ParseQuery("q = ref_to_nowhere;").ok());
  EXPECT_FALSE(ParseQuery("q = scan T; q = scan T;").ok());  // redefined
  EXPECT_FALSE(
      ParseQuery("q = scan T | groupby k sum(*) as s;").ok());  // sum(*)
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto result = ParseQuery("q = scan T |\n  bogus;");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

// End-to-end: parse the paper's Figure 4 query, annotate, and compare with
// the hand-built equivalent.
TEST(ParserTest, ParsedPlanAnnotatesLikeHandBuilt) {
  storage::Dfs dfs;
  catalog::Catalog cat;
  catalog::ViewStore views;
  udf::UdfRegistry udfs;
  ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs).ok());
  storage::Schema schema(
      {storage::Column{"tweet_id", storage::DataType::kInt64},
       storage::Column{"user_id", storage::DataType::kInt64},
       storage::Column{"tweet_text", storage::DataType::kString}});
  auto table = std::make_shared<storage::Table>("TWTR", schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table->AppendRow({storage::Value(int64_t{i}),
                                  storage::Value(int64_t{i % 3}),
                                  storage::Value("wine text")})
                    .ok());
  }
  ASSERT_TRUE(cat.RegisterBase(table, {"tweet_id"}, &dfs).ok());
  plan::AnnotationContext ctx{&cat, &views, &udfs};

  auto parsed = ParseQuery(R"(
    extract = scan TWTR | project tweet_id, user_id, tweet_text;
    scored  = extract | udf UDF_CLASSIFY_FOOD_SCORE(threshold = 0.5);
    counts  = extract | groupby user_id count(*) as cnt
                      | filter cnt > 100;
    result  = join scored counts on user_id = user_id;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(plan::AnnotatePlan(*parsed, ctx).ok());

  auto extract = plan::Project(plan::Scan("TWTR"),
                               {"tweet_id", "user_id", "tweet_text"});
  auto scored = plan::Udf(extract, "UDF_CLASSIFY_FOOD_SCORE",
                          {{"threshold", storage::Value(0.5)}});
  auto counts =
      plan::GroupBy(extract, {"user_id"},
                    {plan::AggSpec{plan::AggFn::kCount, "", "cnt"}});
  auto filtered = plan::Filter(
      counts, plan::FilterCond::Compare("cnt", afk::CmpOp::kGt,
                                        storage::Value(100.0)));
  plan::Plan built(plan::Join(scored, filtered, {{"user_id", "user_id"}}));
  ASSERT_TRUE(plan::AnnotatePlan(built, ctx).ok());

  EXPECT_TRUE(parsed->root()->afk == built.root()->afk)
      << "parsed and hand-built plans must be model-equivalent";
  EXPECT_EQ(plan::Fingerprint(parsed->root()),
            plan::Fingerprint(built.root()));
}

}  // namespace
}  // namespace opd::oql

// --- Printer round-trip --------------------------------------------------------

namespace opd::oql {
namespace {

TEST(PrinterTest, SimpleRoundTrip) {
  auto plan = ParseQuery(
      "q = scan TWTR | project user_id, tweet_text "
      "| filter user_id > 5;");
  ASSERT_TRUE(plan.ok());
  auto text = Print(*plan);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto reparsed = ParseQuery(*text);
  ASSERT_TRUE(reparsed.ok()) << "failed to reparse:\n" << *text;
  EXPECT_EQ(plan::Fingerprint(plan->root()),
            plan::Fingerprint(reparsed->root()));
}

TEST(PrinterTest, UdfAndGroupByRoundTrip) {
  auto plan = ParseQuery(
      "q = scan TWTR | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5) "
      "| groupby user_id count(*) as n, max(wine_score) as top;");
  ASSERT_TRUE(plan.ok());
  auto text = Print(*plan);
  ASSERT_TRUE(text.ok());
  auto reparsed = ParseQuery(*text);
  ASSERT_TRUE(reparsed.ok()) << "failed to reparse:\n" << *text;
  EXPECT_EQ(plan::Fingerprint(plan->root()),
            plan::Fingerprint(reparsed->root()));
}

TEST(PrinterTest, JoinAndSharedSubtreeRoundTrip) {
  auto plan = ParseQuery(R"(
    base = scan TWTR | project user_id, tweet_text;
    a = base | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5);
    b = base | groupby user_id count(*) as n;
    r = join a b on user_id = user_id;
  )");
  ASSERT_TRUE(plan.ok());
  auto text = Print(*plan);
  ASSERT_TRUE(text.ok());
  auto reparsed = ParseQuery(*text);
  ASSERT_TRUE(reparsed.ok()) << "failed to reparse:\n" << *text;
  EXPECT_EQ(plan::Fingerprint(plan->root()),
            plan::Fingerprint(reparsed->root()));
  // The shared subtree stays shared through the round trip.
  EXPECT_EQ(plan->TopoOrder().size(), reparsed->TopoOrder().size());
}

TEST(PrinterTest, StringLiteralsAndOpaqueFilters) {
  auto plan = ParseQuery(
      "q = scan LAND | filter category == \"wine_bar\" "
      "| filter valid_geo(geo);");
  ASSERT_TRUE(plan.ok());
  auto text = Print(*plan);
  ASSERT_TRUE(text.ok());
  auto reparsed = ParseQuery(*text);
  ASSERT_TRUE(reparsed.ok()) << "failed to reparse:\n" << *text;
  EXPECT_EQ(plan::Fingerprint(plan->root()),
            plan::Fingerprint(reparsed->root()));
}

// The whole analyst workload round-trips.
TEST(PrinterTest, WorkloadQueriesRoundTrip) {
  for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
    for (int version = 1; version <= workload::kNumVersions; ++version) {
      auto plan = workload::BuildQuery(analyst, version);
      ASSERT_TRUE(plan.ok());
      auto text = Print(*plan);
      ASSERT_TRUE(text.ok()) << "A" << analyst << "v" << version;
      auto reparsed = ParseQuery(*text);
      ASSERT_TRUE(reparsed.ok())
          << "A" << analyst << "v" << version << ":\n" << *text;
      EXPECT_EQ(plan::Fingerprint(plan->root()),
                plan::Fingerprint(reparsed->root()))
          << "A" << analyst << "v" << version;
    }
  }
}

}  // namespace
}  // namespace opd::oql
