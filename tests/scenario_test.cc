// Smoke tests for the experiment scenario drivers (the code behind the
// fig*/table* benches), at a tiny data scale.

#include <gtest/gtest.h>

#include "workload/scenarios.h"

namespace opd::workload {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestBedConfig config;
    config.data.n_tweets = 800;
    config.data.n_checkins = 500;
    config.data.n_locations = 120;
    config.data.n_users = 80;
    config.calibrate_udfs = false;
    auto result = TestBed::Create(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    bed_ = std::move(result).value().release();
  }
  static void TearDownTestSuite() {
    delete bed_;
    bed_ = nullptr;
  }

  static TestBed* bed_;
};

TestBed* ScenarioTest::bed_ = nullptr;

TEST_F(ScenarioTest, QueryEvolutionCoversAllVersions) {
  auto rows = RunQueryEvolution(bed_);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(),
            static_cast<size_t>(kNumAnalysts * kNumVersions));
  double improved = 0;
  for (const auto& row : *rows) {
    EXPECT_GE(row.analyst, 1);
    EXPECT_LE(row.analyst, kNumAnalysts);
    EXPECT_GT(row.orig_time_s, 0.0);
    EXPECT_GT(row.rewr_time_s, 0.0);
    EXPECT_GT(row.orig_gb, 0.0);
    if (row.version > 1 && row.ImprovementPct() > 10) improved += 1;
  }
  // Even at toy scale, most revisions should find reuse.
  EXPECT_GE(improved, kNumAnalysts);
}

TEST_F(ScenarioTest, UserEvolutionOneRowPerHoldout) {
  auto rows = RunUserEvolution(bed_);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), static_cast<size_t>(kNumAnalysts));
  for (const auto& row : *rows) {
    EXPECT_EQ(row.version, 1);
    EXPECT_LE(row.rewr_time_s, row.orig_time_s * 1.15)
        << "holdout A" << row.analyst;
  }
}

TEST_F(ScenarioTest, UserEvolutionWithDroppedIdenticalViews) {
  auto rows = RunUserEvolution(bed_, /*drop_identical_views=*/true);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), static_cast<size_t>(kNumAnalysts));
  // With identical views gone, improvements are weakly smaller than with
  // them; mainly this must not crash or corrupt results.
}

TEST_F(ScenarioTest, AnalystAccumulationMonotoneShape) {
  auto improvements = RunAnalystAccumulation(bed_);
  ASSERT_TRUE(improvements.ok()) << improvements.status().ToString();
  ASSERT_EQ(improvements->size(), 8u);
  EXPECT_DOUBLE_EQ(improvements->front(), 0.0);
  for (double v : *improvements) {
    EXPECT_GE(v, -5.0);
    EXPECT_LE(v, 100.0);
  }
}

}  // namespace
}  // namespace opd::workload
