// HashRecycler correctness: the cache's own contracts (pinning, codec
// matching, budgeted eviction, view invalidation), the serving-layer wiring
// (epoch sweep on publish, cross-tenant sharing), the recycle determinism
// matrix {recycle,off} x {row,batch} x {pipelined,phased} x {1,8} threads,
// and a concurrent-tenant stress run (TSan target: shared recycler under
// racing lookups/inserts).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "exec/hash/recycler.h"
#include "server/server.h"
#include "session/session.h"
#include "storage/table.h"
#include "storage/value.h"

namespace opd {
namespace {

using exec::hash::BaseIdentity;
using exec::hash::CachedBuild;
using exec::hash::HashRecycler;
using exec::hash::RecycleKey;
using exec::hash::RecycleKind;

// --- HashRecycler unit tests ------------------------------------------------

RecycleKey MakeKey(const std::string& table,
                   std::vector<uint8_t> codec_modes = {}) {
  RecycleKey key;
  key.kind = RecycleKind::kJoinBuildBatch;
  key.identity = BaseIdentity(table);
  key.key_cols = {0};
  key.codec_modes = std::move(codec_modes);
  key.num_buckets = 1;
  return key;
}

std::shared_ptr<CachedBuild> MakeBuild(const void* pin, uint64_t bytes,
                                       double build_cost_s,
                                       int64_t view_id = -1) {
  auto build = std::make_shared<CachedBuild>();
  build->pin = pin;
  build->bytes = bytes;
  build->build_cost_s = build_cost_s;
  build->view_id = view_id;
  return build;
}

TEST(HashRecyclerTest, LookupHitsOnlyWithMatchingPin) {
  HashRecycler recycler;
  int pinned = 0;
  int other = 0;
  const RecycleKey key = MakeKey("T");

  EXPECT_EQ(recycler.Lookup(key, &pinned), nullptr);  // cold miss
  auto build = MakeBuild(&pinned, 100, 0.5);
  EXPECT_TRUE(recycler.Insert(key, build).inserted);
  EXPECT_EQ(recycler.Lookup(key, &pinned).get(), build.get());

  // Same identity, different live input object: the cached indices are
  // meaningless, so the stale entry must be dropped, not served.
  EXPECT_EQ(recycler.Lookup(key, &other), nullptr);
  const auto stats = recycler.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  // Dropped for real: even the original pin misses now.
  EXPECT_EQ(recycler.Lookup(key, &pinned), nullptr);
}

TEST(HashRecyclerTest, CodecMismatchMissesWithoutDroppingEntry) {
  HashRecycler recycler;
  int pin = 0;
  const RecycleKey dict = MakeKey("T", {2, 2});
  const RecycleKey raw = MakeKey("T", {0, 0});

  ASSERT_TRUE(recycler.Insert(dict, MakeBuild(&pin, 100, 0.5)).inserted);
  // A different planned codec stores different key bytes — must miss, and
  // must NOT evict the entry keyed to the other codec.
  EXPECT_EQ(recycler.Lookup(raw, &pin), nullptr);
  EXPECT_EQ(recycler.stats().entries, 1u);
  EXPECT_NE(recycler.Lookup(dict, &pin), nullptr);
}

TEST(HashRecyclerTest, DuplicateInsertKeepsFirstBuild) {
  HashRecycler recycler;
  int pin = 0;
  const RecycleKey key = MakeKey("T");
  auto first = MakeBuild(&pin, 100, 0.5);
  auto second = MakeBuild(&pin, 100, 0.5);

  EXPECT_TRUE(recycler.Insert(key, first).inserted);
  // Two queries racing to build the same table both built correct
  // structures; the first insert wins and the second is a no-op.
  EXPECT_FALSE(recycler.Insert(key, second).inserted);
  EXPECT_EQ(recycler.Lookup(key, &pin).get(), first.get());
  const auto stats = recycler.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 100u);
}

TEST(HashRecyclerTest, OversizedBuildIsNeverInserted) {
  HashRecycler::Config config;
  config.budget_bytes = 1000;
  HashRecycler recycler(config);
  int pin = 0;

  EXPECT_FALSE(recycler.Insert(MakeKey("BIG"),
                               MakeBuild(&pin, 2000, 9.0))
                   .inserted);
  const auto stats = recycler.stats();
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(HashRecyclerTest, EvictsLowestBenefitPerByteFirst) {
  HashRecycler::Config config;
  config.budget_bytes = 1000;
  HashRecycler recycler(config);
  int pin = 0;

  // A earns benefit via two hits; B never hits. When C overflows the
  // budget, B (benefit 0, oldest zero-benefit entry) must go first and the
  // single eviction restores the budget.
  ASSERT_TRUE(recycler.Insert(MakeKey("A"), MakeBuild(&pin, 400, 0.2))
                  .inserted);
  ASSERT_NE(recycler.Lookup(MakeKey("A"), &pin), nullptr);
  ASSERT_NE(recycler.Lookup(MakeKey("A"), &pin), nullptr);
  ASSERT_TRUE(recycler.Insert(MakeKey("B"), MakeBuild(&pin, 400, 0.2))
                  .inserted);

  const auto result = recycler.Insert(MakeKey("C"), MakeBuild(&pin, 400, 0.2));
  EXPECT_TRUE(result.inserted);
  EXPECT_EQ(result.evicted, 1u);

  const auto stats = recycler.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 800u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(recycler.Lookup(MakeKey("B"), &pin), nullptr);
  EXPECT_NE(recycler.Lookup(MakeKey("A"), &pin), nullptr);
  EXPECT_NE(recycler.Lookup(MakeKey("C"), &pin), nullptr);
}

TEST(HashRecyclerTest, EvictionTieBreaksByInsertionOrder) {
  HashRecycler::Config config;
  config.budget_bytes = 1000;
  HashRecycler recycler(config);
  int pin = 0;

  // Three zero-benefit entries with identical bytes: identical scores, so
  // insertion sequence decides deterministically — oldest first.
  ASSERT_TRUE(recycler.Insert(MakeKey("A"), MakeBuild(&pin, 400, 0.2))
                  .inserted);
  ASSERT_TRUE(recycler.Insert(MakeKey("B"), MakeBuild(&pin, 400, 0.2))
                  .inserted);
  const auto result = recycler.Insert(MakeKey("C"), MakeBuild(&pin, 400, 0.2));
  EXPECT_TRUE(result.inserted);
  EXPECT_EQ(result.evicted, 1u);
  EXPECT_EQ(recycler.Lookup(MakeKey("A"), &pin), nullptr);
  EXPECT_NE(recycler.Lookup(MakeKey("B"), &pin), nullptr);
  EXPECT_NE(recycler.Lookup(MakeKey("C"), &pin), nullptr);
}

TEST(HashRecyclerTest, InvalidateViewsSweepsOnlyDeadViewEntries) {
  HashRecycler recycler;
  int pin = 0;
  ASSERT_TRUE(recycler
                  .Insert(MakeKey("BASE"),
                          MakeBuild(&pin, 100, 0.1, /*view_id=*/-1))
                  .inserted);
  ASSERT_TRUE(recycler
                  .Insert(MakeKey("VLIVE"),
                          MakeBuild(&pin, 100, 0.1, /*view_id=*/7))
                  .inserted);
  ASSERT_TRUE(recycler
                  .Insert(MakeKey("VDEAD"),
                          MakeBuild(&pin, 100, 0.1, /*view_id=*/9))
                  .inserted);

  EXPECT_EQ(recycler.InvalidateViews([](int64_t id) { return id == 7; }), 1u);
  const auto stats = recycler.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 200u);
  EXPECT_NE(recycler.Lookup(MakeKey("BASE"), &pin), nullptr);
  EXPECT_NE(recycler.Lookup(MakeKey("VLIVE"), &pin), nullptr);
  EXPECT_EQ(recycler.Lookup(MakeKey("VDEAD"), &pin), nullptr);
}

// --- Serving-layer integration ----------------------------------------------

// Order- and name-insensitive content hash of a result table (schema +
// every row), mirroring the server test's fingerprint helper.
uint64_t TableFingerprint(const storage::Table& t) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const storage::Column& col : t.schema().columns()) {
    HashCombine(&h, HashString(col.name));
    HashCombine(&h, static_cast<uint64_t>(col.type));
  }
  HashCombine(&h, t.num_rows());
  const storage::RowHash row_hash;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    HashCombine(&h, row_hash(t.row(i)));
  }
  return h;
}

// k = (i * mult + salt) % mod (or k = i when mod == 0), value column = i % 97.
// Joined tables need distinct value-column names (JOIN output rejects
// duplicates), hence `val_name`.
storage::TablePtr MakeKV(const std::string& name, int64_t rows, int64_t mult,
                         int64_t salt, int64_t mod,
                         const std::string& val_name = "v") {
  auto table = std::make_shared<storage::Table>(
      name, storage::Schema({{"k", storage::DataType::kInt64},
                             {val_name, storage::DataType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t key = mod > 0 ? (i * mult + salt) % mod : i;
    EXPECT_TRUE(
        table->AppendRow({storage::Value(key), storage::Value(i % 97)}).ok());
  }
  return table;
}

// Sums the per-job recycler tallies of one run.
std::pair<uint64_t, uint64_t> RecycleCounts(const RunResult& run) {
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const exec::JobRun& jr : run.jobs) {
    hits += jr.recycle_hits;
    misses += jr.recycle_misses;
  }
  return {hits, misses};
}

TEST(RecyclerServingTest, CrossTenantJoinBuildIsSharedOnce) {
  SessionOptions options;
  options.engine.num_threads = 1;
  auto server = Server::Create(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)
                  ->RegisterTable(MakeKV("JB", 1500, 1, 0, 0, "bv"), {"k"})
                  .ok());
  ASSERT_TRUE((*server)
                  ->RegisterTable(MakeKV("JP", 2000, 7, 0, 3000), {"k"})
                  .ok());

  const std::string oql =
      "p = scan JP;"
      "b = scan JB;"
      "r = join p b on k = k;";
  RunOptions opts;
  opts.rewrite = false;

  ClientSession alice = (*server)->Connect("alice");
  auto r1 = alice.Run(oql, opts);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_NE(r1->table, nullptr);
  const auto [hits1, misses1] = RecycleCounts(*r1);
  EXPECT_EQ(hits1, 0u);
  EXPECT_GE(misses1, 1u);  // cold server: the build side misses and inserts

  // A different tenant running the same join probes alice's cached build
  // instead of rebuilding — one build serves the whole server.
  ClientSession bob = (*server)->Connect("bob");
  auto r2 = bob.Run(oql, opts);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_NE(r2->table, nullptr);
  const auto [hits2, misses2] = RecycleCounts(*r2);
  EXPECT_GE(hits2, 1u);
  EXPECT_EQ(misses2, 0u);
  EXPECT_EQ(TableFingerprint(*r2->table), TableFingerprint(*r1->table));

  // The hit is attributed to bob's private metric scope.
  auto it = r2->tenant_delta.counters.find("server.recycle.hits");
  ASSERT_NE(it, r2->tenant_delta.counters.end());
  EXPECT_GE(it->second, 1u);

  const auto stats = (*server)->recycler().stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.inserts, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(RecyclerServingTest, ViewKeyedEntriesAreSweptWhenViewsDie) {
  SessionOptions options;
  options.engine.num_threads = 1;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(
      (*session)->RegisterTable(MakeKV("VG", 4000, 1, 0, 64), {"k"}).ok());
  ASSERT_TRUE(
      (*session)->RegisterTable(MakeKV("VP0", 2000, 31, 0, 64, "pv"), {"k"}).ok());
  ASSERT_TRUE(
      (*session)->RegisterTable(MakeKV("VP1", 2000, 31, 1, 64, "pv"), {"k"}).ok());

  HashRecycler& recycler = (*session)->server().recycler();

  // Query 0 materializes the group-by as an opportunistic view.
  auto r0 = (*session)->Run("a = scan VG | groupby k sum(v) as s;");
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  ASSERT_GT((*session)->views().size(), 0u);

  // Query 1's group-by subtree rewrites to a scan of that view; the join's
  // build side is then the view scan, so its built table is cached under a
  // view:<id>@<epoch> identity.
  auto r1 = (*session)->Run(
      "a = scan VG | groupby k sum(v) as s;"
      "p = scan VP0;"
      "r = join p a on k = k;");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->rewritten);
  const size_t entries_cached = recycler.stats().entries;
  EXPECT_GE(entries_cached, 2u);  // base group-by route + view join build

  // Proof the view-keyed entry is live: a second rewritten query (distinct
  // probe, same group-by subtree) hits it instead of rebuilding.
  auto r2 = (*session)->Run(
      "a = scan VG | groupby k sum(v) as s;"
      "p = scan VP1;"
      "r = join p a on k = k;");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_GE(RecycleCounts(*r2).first, 1u);

  // Kill every view, then run any query: RunAdmitted's publish-time sweep
  // must drop the view-keyed entries (their identity can never match
  // again) while base-keyed entries survive.
  (*session)->views().DropAll();
  RunOptions no_rewrite;
  no_rewrite.rewrite = false;
  auto sweep = (*session)->Run("r = scan VG;", no_rewrite);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_LT(recycler.stats().entries, entries_cached);
}

// The determinism contract under recycling: for every engine schedule and
// thread count, a recycled (warm) run emits byte-identical results to both
// its own cold run and to every other configuration — recycling is a pure
// time optimization.
TEST(RecyclerDeterminismTest, RecycleMatrixIsByteIdentical) {
  struct ConfigRun {
    std::vector<std::vector<storage::Row>> tables;
    uint64_t hits = 0;
  };
  auto run_config = [](bool recycle, bool vectorized, bool pipelined,
                       int threads) {
    SessionOptions options;
    options.engine.recycle_hash = recycle;
    options.engine.vectorized = vectorized;
    options.engine.pipelined = pipelined;
    options.engine.num_threads = threads;
    auto session = Session::Create(options);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    ConfigRun out;
    if (!session.ok()) return out;
    EXPECT_TRUE(
        (*session)->RegisterTable(MakeKV("MB", 1500, 1, 0, 0, "bv"), {"k"}).ok());
    EXPECT_TRUE(
        (*session)->RegisterTable(MakeKV("MP", 2000, 7, 0, 3000), {"k"}).ok());
    EXPECT_TRUE(
        (*session)->RegisterTable(MakeKV("MG", 3000, 1, 0, 64), {"k"}).ok());

    RunOptions opts;
    opts.rewrite = false;
    // Two repetitions: the first builds (and, when recycling, caches), the
    // second recycles. Both must produce the same bytes.
    for (int rep = 0; rep < 2; ++rep) {
      auto join = (*session)->Run(
          "p = scan MP;"
          "b = scan MB;"
          "r = join p b on k = k;",
          opts);
      EXPECT_TRUE(join.ok()) << join.status().ToString();
      if (join.ok() && join->table != nullptr) {
        out.tables.push_back(join->table->rows());
        out.hits += RecycleCounts(*join).first;
      }
      auto group = (*session)->Run(
          "g = scan MG | groupby k count(*) as n, sum(v) as s;", opts);
      EXPECT_TRUE(group.ok()) << group.status().ToString();
      if (group.ok() && group->table != nullptr) {
        out.tables.push_back(group->table->rows());
        out.hits += RecycleCounts(*group).first;
      }
    }
    return out;
  };

  const ConfigRun baseline = run_config(/*recycle=*/false,
                                        /*vectorized=*/false,
                                        /*pipelined=*/false, /*threads=*/1);
  ASSERT_EQ(baseline.tables.size(), 4u);
  EXPECT_EQ(baseline.hits, 0u);

  uint64_t recycled_hits = 0;
  for (bool recycle : {false, true}) {
    for (bool vectorized : {false, true}) {
      for (bool pipelined : {false, true}) {
        for (int threads : {1, 8}) {
          if (!recycle && !vectorized && !pipelined && threads == 1) continue;
          SCOPED_TRACE("recycle=" + std::to_string(recycle) +
                       " vectorized=" + std::to_string(vectorized) +
                       " pipelined=" + std::to_string(pipelined) +
                       " threads=" + std::to_string(threads));
          const ConfigRun got =
              run_config(recycle, vectorized, pipelined, threads);
          ASSERT_EQ(got.tables.size(), baseline.tables.size());
          for (size_t t = 0; t < got.tables.size(); ++t) {
            ASSERT_EQ(got.tables[t].size(), baseline.tables[t].size())
                << "table " << t;
            for (size_t r = 0; r < got.tables[t].size(); ++r) {
              ASSERT_EQ(got.tables[t][r], baseline.tables[t][r])
                  << "table " << t << " row " << r;
            }
          }
          if (!recycle) {
            EXPECT_EQ(got.hits, 0u);
          } else {
            recycled_hits += got.hits;
          }
        }
      }
    }
  }
  // The matrix must actually exercise warm paths, not vacuously pass.
  EXPECT_GT(recycled_hits, 0u);
}

// Four tenants hammer the same join on one server: every lookup races every
// insert on the shared recycler, and every result must still be
// byte-identical to the cold run. This is the TSan target.
TEST(RecyclerStressTest, ConcurrentTenants) {
  SessionOptions options;
  options.engine.num_threads = 2;
  options.server.max_concurrent_queries = 4;
  auto server = Server::Create(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)
                  ->RegisterTable(MakeKV("SB", 1500, 1, 0, 0, "bv"), {"k"})
                  .ok());
  ASSERT_TRUE((*server)
                  ->RegisterTable(MakeKV("SP", 2000, 7, 0, 3000), {"k"})
                  .ok());

  const std::string oql =
      "p = scan SP;"
      "b = scan SB;"
      "r = join p b on k = k;";
  RunOptions opts;
  opts.rewrite = false;

  ClientSession cold = (*server)->Connect("cold");
  auto baseline_run = cold.Run(oql, opts);
  ASSERT_TRUE(baseline_run.ok()) << baseline_run.status().ToString();
  ASSERT_NE(baseline_run->table, nullptr);
  const uint64_t baseline = TableFingerprint(*baseline_run->table);

  const int kTenants = 4;
  const int kItersPerTenant = 6;
  std::mutex mu;
  std::vector<std::string> errors;
  std::vector<uint64_t> fingerprints;
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      ClientSession client =
          (*server)->Connect("tenant" + std::to_string(t));
      for (int i = 0; i < kItersPerTenant; ++i) {
        auto run = client.Run(oql, opts);
        std::lock_guard<std::mutex> lock(mu);
        if (!run.ok()) {
          errors.push_back(run.status().ToString());
          continue;
        }
        fingerprints.push_back(run->table ? TableFingerprint(*run->table)
                                          : 0);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  ASSERT_TRUE(errors.empty()) << errors.front();
  ASSERT_EQ(fingerprints.size(),
            static_cast<size_t>(kTenants) * kItersPerTenant);
  for (uint64_t fp : fingerprints) EXPECT_EQ(fp, baseline);

  const auto stats = (*server)->recycler().stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.inserts, 1u);
  EXPECT_GE(stats.entries, 1u);
}

}  // namespace
}  // namespace opd
