// Serving-layer tests (DESIGN.md §3): admission control determinism, epoch
// snapshot visibility, per-tenant metric isolation, and the interleaved
// multi-tenant stress test whose outputs must match a serial replay of the
// recorded schedule byte for byte.

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "plan/plan.h"
#include "server/admission.h"
#include "server/server.h"
#include "session/session.h"
#include "storage/table.h"
#include "storage/value.h"
#include "workload/queries.h"
#include "workload/scenarios.h"

namespace opd {
namespace {

using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

// Order- and content-sensitive fingerprint of a result table (schema +
// every row). Deliberately excludes the table *name*, which embeds the
// engine's run counter and so differs between a concurrent run and its
// serial replay even when the data is byte-identical.
uint64_t TableFingerprint(const Table& t) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Column& col : t.schema().columns()) {
    HashCombine(&h, HashString(col.name));
    HashCombine(&h, static_cast<uint64_t>(col.type));
  }
  HashCombine(&h, t.num_rows());
  const storage::RowHash row_hash;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    HashCombine(&h, row_hash(t.row(i)));
  }
  return h;
}

workload::TestBedConfig TinyConfig() {
  workload::TestBedConfig config;
  config.data.n_tweets = 800;
  config.data.n_checkins = 500;
  config.data.n_locations = 120;
  config.data.n_users = 80;
  // UDF cost scalars are calibrated from wall-clock throughput and so
  // differ run to run; disable calibration so two beds built from this
  // config make identical rewrite decisions (the serial-replay oracle).
  config.calibrate_udfs = false;
  return config;
}

std::unique_ptr<workload::TestBed> MakeBed(workload::TestBedConfig config) {
  auto bed = workload::TestBed::Create(std::move(config));
  EXPECT_TRUE(bed.ok()) << bed.status().ToString();
  return bed.ok() ? std::move(bed).value() : nullptr;
}

plan::Plan MustBuildQuery(int analyst, int version) {
  auto plan = workload::BuildQuery(analyst, version);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? std::move(plan).value() : plan::Plan();
}

// Spins until `pred` holds (10s cap) — used to sequence admissions across
// test threads without relying on sleeps for correctness.
template <typename Pred>
bool WaitUntil(Pred pred) {
  for (int i = 0; i < 10000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// --- AdmissionController unit tests ----------------------------------------

TEST(AdmissionControllerTest, TryAdmitEnforcesCapacityAndQuota) {
  server::AdmissionController::Options opts;
  opts.max_concurrent = 2;
  opts.per_tenant_quota = 1;
  server::AdmissionController ctrl(opts);

  auto t1 = ctrl.TryAdmit("a");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(*t1, 1u);
  // Quota: "a" already holds its one slot.
  auto quota = ctrl.TryAdmit("a");
  ASSERT_FALSE(quota.ok());
  EXPECT_EQ(quota.status().code(), StatusCode::kOutOfRange);
  auto t2 = ctrl.TryAdmit("b");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t2, 2u);
  // Capacity: both slots held.
  auto full = ctrl.TryAdmit("c");
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kOutOfRange);

  ctrl.Release("a");
  auto t3 = ctrl.TryAdmit("c");
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(*t3, 3u);

  const auto stats = ctrl.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 2);
  EXPECT_EQ(stats.waiting, 0);
  EXPECT_EQ(ctrl.admission_log(),
            (std::vector<std::string>{"a", "b", "c"}));
  ctrl.Release("b");
  ctrl.Release("c");
}

TEST(AdmissionControllerTest, FairSchedulingFavorsLeastLoadedTenant) {
  server::AdmissionController::Options opts;
  opts.max_concurrent = 2;
  opts.fair = true;
  server::AdmissionController ctrl(opts);

  EXPECT_EQ(ctrl.Admit("a"), 1u);
  EXPECT_EQ(ctrl.Admit("a"), 2u);

  // Queue a third "a", then a first "b" — strictly in this arrival order.
  std::thread wa([&] { ctrl.Admit("a"); });
  ASSERT_TRUE(WaitUntil([&] { return ctrl.stats().waiting == 1; }));
  std::thread wb([&] { ctrl.Admit("b"); });
  ASSERT_TRUE(WaitUntil([&] { return ctrl.stats().waiting == 2; }));

  // Fair pick: the free slot goes to "b" (0 running) over the
  // earlier-arrived "a" (1 running after the release).
  ctrl.Release("a");
  ASSERT_TRUE(WaitUntil([&] { return ctrl.stats().waiting == 1; }));
  EXPECT_EQ(ctrl.admission_log(),
            (std::vector<std::string>{"a", "a", "b"}));

  ctrl.Release("a");
  ASSERT_TRUE(WaitUntil([&] { return ctrl.stats().waiting == 0; }));
  EXPECT_EQ(ctrl.admission_log(),
            (std::vector<std::string>{"a", "a", "b", "a"}));
  wa.join();
  wb.join();

  const auto stats = ctrl.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.queued, 2u);
  ctrl.Release("a");
  ctrl.Release("b");
}

TEST(AdmissionControllerTest, FifoSchedulingGrantsInArrivalOrder) {
  server::AdmissionController::Options opts;
  opts.max_concurrent = 2;
  opts.fair = false;
  server::AdmissionController ctrl(opts);

  EXPECT_EQ(ctrl.Admit("a"), 1u);
  EXPECT_EQ(ctrl.Admit("a"), 2u);
  std::thread wa([&] { ctrl.Admit("a"); });
  ASSERT_TRUE(WaitUntil([&] { return ctrl.stats().waiting == 1; }));
  std::thread wb([&] { ctrl.Admit("b"); });
  ASSERT_TRUE(WaitUntil([&] { return ctrl.stats().waiting == 2; }));

  // FIFO: the earlier-arrived "a" wins the free slot despite holding more.
  ctrl.Release("a");
  ASSERT_TRUE(WaitUntil([&] { return ctrl.stats().waiting == 1; }));
  EXPECT_EQ(ctrl.admission_log(),
            (std::vector<std::string>{"a", "a", "a"}));
  ctrl.Release("a");
  ASSERT_TRUE(WaitUntil([&] { return ctrl.stats().waiting == 0; }));
  wa.join();
  wb.join();
  EXPECT_EQ(ctrl.admission_log(),
            (std::vector<std::string>{"a", "a", "a", "b"}));
  ctrl.Release("a");
  ctrl.Release("b");
}

// --- Server integration: admission under a held slot ------------------------

TEST(ServerAdmissionTest, FailFastRejectsWhileSlotHeldThenSucceeds) {
  SessionOptions options;
  options.server.max_concurrent_queries = 1;
  auto server_or = Server::Create(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  Server& server = **server_or;

  Schema schema({Column{"id", DataType::kInt64},
                 Column{"txt", DataType::kString}});
  auto table = std::make_shared<Table>("T", schema);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        table->AppendRow({Value(int64_t{i}), Value("row")}).ok());
  }
  ASSERT_TRUE(server.RegisterTable(table, {"id"}).ok());

  // An opaque predicate that parks its query inside execution until the
  // gate opens — a deterministic way to keep the single slot occupied.
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool entered = false;
    bool open = false;
  };
  auto gate = std::make_shared<Gate>();
  ASSERT_TRUE(server.udfs()
                  .RegisterPredicate(
                      "block_gate",
                      [gate](const std::vector<Value>&, const udf::Params&) {
                        std::unique_lock<std::mutex> lock(gate->mu);
                        if (!gate->entered) {
                          gate->entered = true;
                          gate->cv.notify_all();
                        }
                        gate->cv.wait(lock, [&] { return gate->open; });
                        return true;
                      })
                  .ok());

  std::thread runner([&] {
    ClientSession alice = server.Connect("alice");
    plan::Plan plan(plan::Filter(
        plan::Scan("T"), plan::FilterCond::Opaque("block_gate", {"txt"})));
    RunOptions opts;
    opts.rewrite = false;
    auto run = alice.Run(std::move(plan), opts);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
  });
  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->entered; });
  }

  // The only slot is provably held inside Execute: fail-fast admission
  // must reject instead of queueing.
  ClientSession bob = server.Connect("bob");
  RunOptions fail_fast;
  fail_fast.rewrite = false;
  fail_fast.admission.fail_fast = true;
  auto rejected =
      bob.Run(plan::Plan(plan::Project(plan::Scan("T"), {"id"})), fail_fast);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOutOfRange);

  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->open = true;
  }
  gate->cv.notify_all();
  runner.join();

  auto accepted =
      bob.Run(plan::Plan(plan::Project(plan::Scan("T"), {"id"})), fail_fast);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(accepted->admission_ticket, 2u);
  EXPECT_EQ(accepted->tenant, "bob");
  EXPECT_EQ(server.admission_log(),
            (std::vector<std::string>{"alice", "bob"}));
  const auto stats = server.admission_stats();
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.waiting, 0);
}

// --- Serving semantics over the paper workload ------------------------------

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto bed = MakeBed(TinyConfig());
    ASSERT_NE(bed, nullptr);
    bed_ = bed.release();
  }
  static void TearDownTestSuite() {
    delete bed_;
    bed_ = nullptr;
  }

  static workload::TestBed* bed_;
};

workload::TestBed* ServingTest::bed_ = nullptr;

TEST_F(ServingTest, SnapshotVisibilityAndCrossTenantReuse) {
  Server& server = bed_->session().server();
  bed_->DropAllViews();
  const catalog::Epoch e0 = server.views().epoch();

  ClientSession alice = server.Connect("alice");
  auto r1 = alice.Run(MustBuildQuery(1, 1));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->tenant, "alice");
  EXPECT_EQ(r1->admission_epoch, e0);
  EXPECT_EQ(r1->publish_epoch, e0 + 1);
  // Empty store at admission: nothing to reuse, but views materialized.
  EXPECT_TRUE(r1->views_used.empty());
  ASSERT_GT(server.views().size(), 0u);
  ASSERT_NE(r1->table, nullptr);
  const uint64_t baseline = TableFingerprint(*r1->table);

  // A second tenant running the identical query reuses alice's views —
  // and sees exactly the store as of its own admission epoch.
  ClientSession bob = server.Connect("bob");
  auto r2 = bob.Run(MustBuildQuery(1, 1));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->admission_epoch, e0 + 1);
  EXPECT_EQ(r2->publish_epoch, e0 + 2);
  ASSERT_FALSE(r2->views_used.empty());
  for (const ViewUse& use : r2->views_used) {
    EXPECT_EQ(use.tenant, "alice");
    EXPECT_GE(use.publish_epoch, e0 + 1);
    EXPECT_LE(use.publish_epoch, r2->admission_epoch);
  }
  auto cross = r2->tenant_delta.counters.find("server.views.cross_reuse");
  ASSERT_NE(cross, r2->tenant_delta.counters.end());
  EXPECT_GE(cross->second, 1u);
  ASSERT_NE(r2->table, nullptr);
  EXPECT_EQ(TableFingerprint(*r2->table), baseline);

  // Pinning the admission epoch back to e0 hides every later view: the
  // rewrite sees an empty snapshot and the original plan runs.
  RunOptions pinned;
  pinned.admission.pin_epoch = static_cast<int64_t>(e0);
  auto r3 = bob.Run(MustBuildQuery(1, 1), pinned);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(r3->admission_epoch, e0);
  EXPECT_TRUE(r3->views_used.empty());
  ASSERT_NE(r3->table, nullptr);
  EXPECT_EQ(TableFingerprint(*r3->table), baseline);
}

TEST_F(ServingTest, PerTenantMetricDeltasAreIsolated) {
  Server& server = bed_->session().server();

  ClientSession carol = server.Connect("carol");
  ClientSession dave = server.Connect("dave");
  auto c1 = carol.Run(MustBuildQuery(2, 1));
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  auto d1 = dave.Run(MustBuildQuery(3, 1));
  ASSERT_TRUE(d1.ok()) << d1.status().ToString();
  auto d2 = dave.Run(MustBuildQuery(3, 2));
  ASSERT_TRUE(d2.ok()) << d2.status().ToString();

  // Every run's tenant delta shows exactly one completed query — its own —
  // even though the shared global registry saw three.
  for (const RunResult* r : {&*c1, &*d1, &*d2}) {
    auto it = r->tenant_delta.counters.find("server.queries.completed");
    ASSERT_NE(it, r->tenant_delta.counters.end());
    EXPECT_EQ(it->second, 1u);
  }
  // Cumulative per-tenant scopes count only the tenant's own traffic.
  EXPECT_EQ(server.TenantSnapshot("carol")
                .counters.at("server.queries.completed"),
            1u);
  EXPECT_EQ(server.TenantSnapshot("dave")
                .counters.at("server.queries.completed"),
            2u);

  const auto tenants = server.Tenants();
  EXPECT_TRUE(std::count(tenants.begin(), tenants.end(), "carol"));
  EXPECT_TRUE(std::count(tenants.begin(), tenants.end(), "dave"));
}

TEST_F(ServingTest, AdmissionTicketsAreSequential) {
  Server& server = bed_->session().server();
  const uint64_t before = server.admission_stats().admitted;
  ClientSession erin = server.Connect("erin");
  for (int version = 1; version <= 3; ++version) {
    auto run = erin.Run(MustBuildQuery(4, version));
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->admission_ticket, before + static_cast<uint64_t>(version));
  }
  const auto stats = server.admission_stats();
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.waiting, 0);
}

// --- The interleaved stress test and its serial-replay oracle ---------------

struct StressRecord {
  std::string tenant;
  int analyst = 0;
  int version = 0;
  catalog::Epoch admission_epoch = 0;
  catalog::Epoch publish_epoch = 0;
  uint64_t ticket = 0;
  uint64_t fingerprint = 0;
  std::vector<ViewUse> views_used;
};

// Eight tenants fire shuffled query streams at one Server; every query's
// output must be byte-identical to a serial replay of the recorded schedule
// (publish-epoch order, admission epochs pinned) on a fresh, identically
// seeded bed. This is the snapshot-consistency acceptance test: it can only
// pass if a query's rewrite saw exactly the views complete at its admission
// and view publication is atomic at completion.
TEST(ServerStressTest, InterleavedOutputsMatchSerialReplay) {
  const int kTenants = 8;
  int per_tenant = 13;
  if (const char* env = std::getenv("OPD_STRESS_QUERIES")) {
    per_tenant = std::max(1, std::atoi(env) / kTenants);
  }
  const size_t total = static_cast<size_t>(kTenants) * per_tenant;

  auto bed = MakeBed(TinyConfig());
  ASSERT_NE(bed, nullptr);
  Server& server = bed->session().server();

  // Deterministically shuffled per-tenant query streams (the randomized
  // admission order the issue asks for comes from thread interleaving on
  // top of these fixed streams).
  std::vector<std::vector<std::pair<int, int>>> streams(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    std::vector<std::pair<int, int>> all;
    while (static_cast<int>(all.size()) < per_tenant) {
      for (int a = 1; a <= workload::kNumAnalysts; ++a) {
        for (int v = 1; v <= workload::kNumVersions; ++v) {
          all.emplace_back(a, v);
        }
      }
    }
    std::mt19937 rng(1234u + static_cast<unsigned>(t));
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(per_tenant);
    streams[t] = std::move(all);
  }

  std::mutex mu;
  std::vector<StressRecord> records;
  std::vector<std::string> errors;
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      ClientSession client = server.Connect("tenant" + std::to_string(t));
      for (const auto& [analyst, version] : streams[t]) {
        auto plan = workload::BuildQuery(analyst, version);
        if (!plan.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          errors.push_back(plan.status().ToString());
          continue;
        }
        auto run = client.Run(std::move(plan).value());
        std::lock_guard<std::mutex> lock(mu);
        if (!run.ok()) {
          errors.push_back(run.status().ToString());
          continue;
        }
        StressRecord rec;
        rec.tenant = run->tenant;
        rec.analyst = analyst;
        rec.version = version;
        rec.admission_epoch = run->admission_epoch;
        rec.publish_epoch = run->publish_epoch;
        rec.ticket = run->admission_ticket;
        rec.fingerprint = run->table ? TableFingerprint(*run->table) : 0;
        rec.views_used = run->views_used;
        records.push_back(std::move(rec));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  ASSERT_TRUE(errors.empty()) << errors.front();
  ASSERT_EQ(records.size(), total);
  EXPECT_EQ(server.admission_log().size(), total);
  EXPECT_EQ(server.admission_stats().admitted, total);

  // One atomic publish per query: the publish epochs are exactly 1..total.
  std::set<catalog::Epoch> epochs;
  for (const StressRecord& rec : records) epochs.insert(rec.publish_epoch);
  EXPECT_EQ(epochs.size(), total);
  EXPECT_EQ(*epochs.begin(), 1u);
  EXPECT_EQ(*epochs.rbegin(), total);

  // Snapshot consistency: every view a query scanned was complete at the
  // query's admission, and the query's own views published strictly later.
  size_t cross_tenant = 0;
  for (const StressRecord& rec : records) {
    EXPECT_LT(rec.admission_epoch, rec.publish_epoch);
    bool cross = false;
    for (const ViewUse& use : rec.views_used) {
      EXPECT_GE(use.publish_epoch, 1u);
      EXPECT_LE(use.publish_epoch, rec.admission_epoch);
      if (!use.tenant.empty() && use.tenant != rec.tenant) cross = true;
    }
    cross_tenant += cross ? 1 : 0;
  }
  // The decision log must show at least one cross-tenant view reuse.
  EXPECT_GE(cross_tenant, 1u);
  EXPECT_GE(obs::MetricsSnapshot::Capture(obs::MetricRegistry::Global())
                .counters["server.views.cross_reuse"],
            1u);

  // --- Serial replay oracle ---------------------------------------------
  std::sort(records.begin(), records.end(),
            [](const StressRecord& a, const StressRecord& b) {
              return a.publish_epoch < b.publish_epoch;
            });
  auto replay_bed = MakeBed(TinyConfig());
  ASSERT_NE(replay_bed, nullptr);
  Server& replay = replay_bed->session().server();
  for (const StressRecord& rec : records) {
    ClientSession client = replay.Connect(rec.tenant);
    RunOptions opts;
    opts.admission.pin_epoch = static_cast<int64_t>(rec.admission_epoch);
    auto run = client.Run(MustBuildQuery(rec.analyst, rec.version), opts);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->publish_epoch, rec.publish_epoch)
        << "replay of " << rec.tenant << " A" << rec.analyst << "v"
        << rec.version;
    ASSERT_NE(run->table, nullptr);
    EXPECT_EQ(TableFingerprint(*run->table), rec.fingerprint)
        << "output diverged from serial replay: " << rec.tenant << " A"
        << rec.analyst << "v" << rec.version << " @ epoch "
        << rec.publish_epoch;
  }

  // --- Query-history determinism ----------------------------------------
  // The two servers' query logs, projected onto the deterministic fields
  // (show_wall=false hides tickets, wall/queue times, and recycle hits,
  // which legitimately differ between a concurrent run and its replay),
  // must render byte-identically: Snapshot() orders by publish epoch, and
  // every remaining field is a function of the pinned epoch schedule.
  ASSERT_NE(server.query_log(), nullptr);
  ASSERT_NE(replay.query_log(), nullptr);
  EXPECT_EQ(server.query_log()->stats().appended, total);
  EXPECT_EQ(replay.query_log()->stats().appended, total);
  const server::IntrospectOptions deterministic{.show_wall = false};
  const std::string concurrent_history =
      server::RenderQueries(server.query_log()->Snapshot(), deterministic);
  const std::string replay_history =
      server::RenderQueries(replay.query_log()->Snapshot(), deterministic);
  EXPECT_EQ(concurrent_history, replay_history)
      << "query history diverged from serial replay";

  // Same for the per-record JSON, timing fields zeroed out.
  auto deterministic_json =
      [](const std::vector<std::shared_ptr<const obs::QueryRecord>>& recs) {
        std::string out;
        for (const auto& rec : recs) {
          obs::QueryRecord copy = *rec;
          copy.ticket = 0;
          copy.queue_wait_s = 0;
          copy.wall_time_s = 0;
          copy.recycle_hits = 0;
          out += copy.ToJson();
          out += '\n';
        }
        return out;
      };
  EXPECT_EQ(deterministic_json(server.query_log()->Snapshot()),
            deterministic_json(replay.query_log()->Snapshot()));
}

// --- Introspection: query history, profiles, SHOW surfaces ------------------

TEST(ServerIntrospectionTest, QueryLogProfilesAndShowSurfaces) {
  auto config = TinyConfig();
  config.session.server.slow_query_threshold_s = 0.0;  // capture everything
  const std::string sink_path =
      ::testing::TempDir() + "/opd_server_history.jsonl";
  std::remove(sink_path.c_str());
  config.session.server.query_log_path = sink_path;
  auto bed = MakeBed(config);
  ASSERT_NE(bed, nullptr);
  Server& server = bed->session().server();
  ASSERT_NE(server.query_log(), nullptr);

  ClientSession ana = server.Connect("ana");
  auto r1 = ana.Run(MustBuildQuery(1, 1));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = ana.Run(MustBuildQuery(1, 2));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  // Records mirror the RunResults they were cut from.
  const auto records = server.query_log()->Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0]->ticket, r1->admission_ticket);
  EXPECT_EQ(records[0]->publish_epoch, r1->publish_epoch);
  EXPECT_EQ(records[0]->rows_out, r1->table->num_rows());
  EXPECT_EQ(records[0]->rows_in, r1->metrics.rows_read);
  EXPECT_GT(records[0]->rows_in, 0u);
  EXPECT_EQ(records[0]->jobs, static_cast<uint64_t>(r1->metrics.jobs));
  EXPECT_EQ(records[0]->status, "ok");
  EXPECT_EQ(records[1]->views_used, r2->views_used.size());
  EXPECT_GT(records[1]->rw_candidates, 0u);  // the rewrite search ran

  // Slow capture at threshold 0.0: every query keeps its full profile.
  const auto rec = server.query_log()->Find(r2->admission_ticket);
  ASSERT_NE(rec, nullptr);
  const auto profile = server.query_log()->FindProfile(r2->admission_ticket);
  ASSERT_TRUE(profile.has_value());
  EXPECT_NE(profile->explain_analyze.find("[job "), std::string::npos);
  EXPECT_EQ(server.query_log()->stats().slow_captured, 2u);

  // The SHOW renderings carry the load-bearing pieces.
  const std::string queries = server::RenderQueries(records);
  EXPECT_NE(queries.find("queries: 2"), std::string::npos);
  EXPECT_NE(queries.find("ana"), std::string::npos);
  const std::string rendered = server::RenderProfile(*rec, profile);
  EXPECT_NE(rendered.find("tenant=ana"), std::string::npos);
  EXPECT_NE(rendered.find("slow-query capture"), std::string::npos);
  EXPECT_NE(rendered.find("rewrite: candidates="), std::string::npos);

  const server::ServerStats stats = server.Introspect();
  EXPECT_EQ(stats.querylog.appended, 2u);
  EXPECT_EQ(stats.querylog.slow_captured, 2u);
  EXPECT_GT(stats.epoch, 0u);
  ASSERT_FALSE(stats.tenants.empty());
  const auto ana_slo =
      std::find_if(stats.tenants.begin(), stats.tenants.end(),
                   [](const server::TenantSlo& s) { return s.tenant == "ana"; });
  ASSERT_NE(ana_slo, stats.tenants.end());
  EXPECT_EQ(ana_slo->queries, 2u);
  EXPECT_GT(ana_slo->latency_p95_s, 0.0);
  const std::string stats_text = server::RenderServerStats(stats);
  EXPECT_NE(stats_text.find("server stats"), std::string::npos);
  EXPECT_NE(stats_text.find("slo"), std::string::npos);
  EXPECT_NE(stats_text.find("ana:"), std::string::npos);

  // SLO gauges refreshed on completion, in global and tenant scope alike.
  EXPECT_GT(server.TenantSnapshot("ana").gauges.at("server.slo.latency_p95"),
            0.0);

  // A failing query still leaves an (error) record.
  auto bad = ana.Run("x = scan NO_SUCH_TABLE;");
  ASSERT_FALSE(bad.ok());
  const auto after_error = server.query_log()->Snapshot();
  ASSERT_EQ(after_error.size(), 3u);
  // Failed queries never publish; their record sorts at publish_epoch 0.
  EXPECT_EQ(after_error[0]->status, "error");
  EXPECT_FALSE(after_error[0]->error.empty());
  EXPECT_EQ(after_error[0]->query, "x = scan NO_SUCH_TABLE;");

  // The JSONL sink holds one line per completion, errors included.
  std::ifstream sink(sink_path);
  ASSERT_TRUE(sink.good());
  size_t lines = 0;
  std::string line;
  while (std::getline(sink, line)) ++lines;
  EXPECT_EQ(lines, 3u);
  std::remove(sink_path.c_str());
}

TEST(ServerIntrospectionTest, QueryLogDisabledByZeroCapacity) {
  auto config = TinyConfig();
  config.session.server.query_log_capacity = 0;
  auto bed = MakeBed(config);
  ASSERT_NE(bed, nullptr);
  Server& server = bed->session().server();
  EXPECT_EQ(server.query_log(), nullptr);
  ClientSession ana = server.Connect("ana");
  auto run = ana.Run(MustBuildQuery(1, 1));
  EXPECT_TRUE(run.ok()) << run.status().ToString();  // serving unaffected
}

}  // namespace
}  // namespace opd
