// Tests for the view advisor and DFS persistence, plus failure-injection
// tests for the engine under constrained storage.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "catalog/eviction.h"
#include "rewrite/advisor.h"
#include "udf/builtin_udfs.h"
#include "storage/persistence.h"
#include "workload/scenarios.h"

namespace opd {
namespace {

workload::TestBedConfig SmallConfig() {
  workload::TestBedConfig config;
  config.data.n_tweets = 1500;
  config.data.n_checkins = 800;
  config.data.n_locations = 150;
  config.calibrate_udfs = false;
  return config;
}

// --- Advisor -----------------------------------------------------------------

TEST(AdvisorTest, RanksViewsByBenefit) {
  auto bed = workload::TestBed::Create(SmallConfig()).value();
  ASSERT_TRUE(bed->RunOriginal(1, 1).ok());
  ASSERT_TRUE(bed->RunOriginal(2, 1).ok());

  std::vector<plan::Plan> queries;
  for (int version = 2; version <= 4; ++version) {
    queries.push_back(workload::BuildQuery(1, version).value());
    queries.push_back(workload::BuildQuery(2, version).value());
  }
  rewrite::ViewAdvisor advisor(&bed->optimizer(), &bed->views());
  auto report = advisor.Analyze(&queries);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->queries_total, 6);
  EXPECT_GT(report->queries_improved, 0);
  EXPECT_GT(report->total_benefit_s, 0.0);
  ASSERT_FALSE(report->ranking.empty());
  // Ranking is sorted descending by benefit.
  for (size_t i = 1; i < report->ranking.size(); ++i) {
    EXPECT_GE(report->ranking[i - 1].total_benefit_s,
              report->ranking[i].total_benefit_s);
  }
  // Every ranked view was actually used by >= 1 query.
  for (const auto& score : report->ranking) {
    EXPECT_GE(score.queries_helped, 1);
    // Some views are legitimately empty at this tiny scale (selective
    // filters); bytes is only required to be populated from the store.
    auto def = bed->views().Find(score.id);
    ASSERT_TRUE(def.ok());
    EXPECT_EQ(score.bytes, (*def)->bytes);
  }
  // Used + unused partitions the store.
  EXPECT_EQ(report->ranking.size() + report->unused.size(),
            bed->views().size());
  // The human-readable rendering mentions the top view.
  std::string text = report->ToString(bed->views());
  EXPECT_NE(text.find("view ranking"), std::string::npos);
}

TEST(AdvisorTest, EmptyStoreYieldsNoBenefit) {
  auto bed = workload::TestBed::Create(SmallConfig()).value();
  std::vector<plan::Plan> queries;
  queries.push_back(workload::BuildQuery(1, 1).value());
  rewrite::ViewAdvisor advisor(&bed->optimizer(), &bed->views());
  auto report = advisor.Analyze(&queries);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries_improved, 0);
  EXPECT_DOUBLE_EQ(report->total_benefit_s, 0.0);
  EXPECT_TRUE(report->ranking.empty());
}

TEST(AdvisorTest, AgreesWithEvictionOrdering) {
  // Views the advisor ranks highly should survive cost-benefit eviction
  // once their benefits are recorded.
  auto bed = workload::TestBed::Create(SmallConfig()).value();
  ASSERT_TRUE(bed->RunOriginal(2, 1).ok());
  std::vector<plan::Plan> queries = {workload::BuildQuery(2, 2).value()};
  rewrite::ViewAdvisor advisor(&bed->optimizer(), &bed->views());
  auto report = advisor.Analyze(&queries);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ranking.empty());
  for (const auto& score : report->ranking) {
    ASSERT_TRUE(
        bed->views().RecordAccess(score.id, score.total_benefit_s).ok());
  }
  catalog::ViewRetention retention(&bed->views(), &bed->dfs(),
                                   {1, catalog::EvictionPolicy::kCostBenefit});
  auto order = retention.EvictionOrder();
  // The advisor's top view is evicted last (or close to it).
  catalog::ViewId top = report->ranking.front().id;
  size_t position = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == top) position = i;
  }
  EXPECT_GT(position, order.size() / 2);
}

// --- Persistence ---------------------------------------------------------------

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("opd_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, SchemaSpecRoundTrip) {
  storage::Schema schema(
      {storage::Column{"a", storage::DataType::kInt64},
       storage::Column{"b", storage::DataType::kString},
       storage::Column{"c", storage::DataType::kDouble},
       storage::Column{"d", storage::DataType::kBool}});
  auto parsed = storage::ParseSchemaSpec(storage::SchemaSpec(schema));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == schema);
  EXPECT_FALSE(storage::ParseSchemaSpec("x:unknown_type").ok());
  EXPECT_FALSE(storage::ParseSchemaSpec("novalue").ok());
}

TEST_F(PersistenceTest, DfsRoundTrip) {
  storage::Dfs dfs;
  storage::Schema schema({storage::Column{"id", storage::DataType::kInt64},
                          storage::Column{"txt", storage::DataType::kString}});
  auto t = std::make_shared<storage::Table>("demo", schema);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(t->AppendRow({storage::Value(int64_t{i}),
                              storage::Value("row " + std::to_string(i))})
                    .ok());
  }
  ASSERT_TRUE(dfs.Write("base/demo", t).ok());
  ASSERT_TRUE(dfs.Write("views/run0/job1", t).ok());

  ASSERT_TRUE(storage::SaveDfs(dfs, dir_.string()).ok());
  auto loaded = storage::LoadDfs(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ListPaths(), dfs.ListPaths());
  auto reread = loaded->Read("views/run0/job1");
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ((*reread)->num_rows(), 25u);
  EXPECT_EQ((*reread)->row(7)[1].as_string(), "row 7");
  EXPECT_TRUE((*reread)->schema() == schema);
}

TEST_F(PersistenceTest, LoadMissingDirectoryFails) {
  auto loaded = storage::LoadDfs((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
}

TEST_F(PersistenceTest, WholeTestBedDfsRoundTrips) {
  auto bed = workload::TestBed::Create(SmallConfig()).value();
  ASSERT_TRUE(bed->RunOriginal(1, 1).ok());
  ASSERT_TRUE(storage::SaveDfs(bed->dfs(), dir_.string()).ok());
  auto loaded = storage::LoadDfs(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ListPaths().size(), bed->dfs().ListPaths().size());
  // Byte sizes survive (modulo double rendering noise on text columns).
  for (const std::string& path : bed->dfs().ListPaths()) {
    auto a = bed->dfs().Peek(path);
    auto b = loaded->Peek(path);
    ASSERT_TRUE(a.ok() && b.ok()) << path;
    EXPECT_EQ((*a)->num_rows(), (*b)->num_rows()) << path;
  }
}

// --- Failure injection -----------------------------------------------------------

TEST(FailureInjectionTest, EngineSurfacesDfsCapacityExhaustion) {
  // A DFS too small for the intermediate materializations: execution must
  // fail with kOutOfRange, not crash or truncate silently.
  udf::UdfRegistry udfs;
  ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs).ok());
  storage::Schema schema(
      {storage::Column{"tweet_id", storage::DataType::kInt64},
       storage::Column{"user_id", storage::DataType::kInt64},
       storage::Column{"tweet_text", storage::DataType::kString}});
  auto t = std::make_shared<storage::Table>("TWTR", schema);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t->AppendRow({storage::Value(int64_t{i}),
                              storage::Value(int64_t{i % 5}),
                              storage::Value("some words to copy around")})
                    .ok());
  }
  storage::Dfs dfs(t->ByteSize() + 512);  // base fits, views don't
  catalog::Catalog cat;
  ASSERT_TRUE(cat.RegisterBase(t, {"tweet_id"}, &dfs).ok());
  catalog::ViewStore views;
  plan::AnnotationContext ctx{&cat, &views, &udfs};
  optimizer::Optimizer optimizer(ctx, optimizer::CostModel());
  exec::Engine engine(&dfs, &views, &optimizer);

  plan::Plan p(plan::Project(plan::Scan("TWTR"),
                             {"tweet_id", "user_id", "tweet_text"}));
  auto result = engine.Execute(&p);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(FailureInjectionTest, ScanOfDroppedViewFails) {
  auto bed = workload::TestBed::Create(SmallConfig()).value();
  ASSERT_TRUE(bed->RunOriginal(1, 1).ok());
  ASSERT_GT(bed->views().size(), 0u);
  catalog::ViewId id = bed->views().All()[0]->id;
  std::string path = bed->views().All()[0]->dfs_path;
  // Metadata says the view exists but the data file is gone.
  ASSERT_TRUE(bed->dfs().Delete(path).ok());
  plan::Plan p(plan::ScanView(id));
  auto result = bed->engine().Execute(&p);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FailureInjectionTest, RewriterUnaffectedByMissingUnrelatedViews) {
  // Dropping an unrelated view's data must not break rewrites that do not
  // touch it (search is metadata-only; execution reads the chosen views).
  auto bed = workload::TestBed::Create(SmallConfig()).value();
  ASSERT_TRUE(bed->RunOriginal(3, 1).ok());  // geo lineage (unrelated)
  ASSERT_TRUE(bed->RunOriginal(1, 1).ok());  // wine lineage
  // Remove a geo view's data file.
  for (const auto* def : bed->views().All()) {
    if (def->producer == "A3v1") {
      ASSERT_TRUE(bed->dfs().Delete(def->dfs_path).ok());
      break;
    }
  }
  auto rewr = bed->RunRewritten(1, 3);
  ASSERT_TRUE(rewr.ok()) << rewr.status().ToString();
  EXPECT_TRUE(rewr->outcome.improved);
}

}  // namespace
}  // namespace opd
