// Randomized property tests: generate random plans, mutate them the way
// analysts revise queries, and check the system-level invariants —
// deterministic execution, annotation stability, and above all that every
// rewrite BFREWRITE produces computes exactly the original result.

#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "exec/engine.h"
#include "plan/fingerprint.h"
#include "rewrite/bf_rewrite.h"
#include "storage/dfs.h"
#include "udf/builtin_udfs.h"

namespace opd {
namespace {

using plan::AggFn;
using plan::AggSpec;
using plan::FilterCond;
using plan::OpNodePtr;
using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

class PropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs_).ok());
    Schema schema({Column{"tweet_id", DataType::kInt64},
                   Column{"user_id", DataType::kInt64},
                   Column{"tweet_text", DataType::kString},
                   Column{"mention_user", DataType::kInt64},
                   Column{"retweets", DataType::kInt64}});
    auto t = std::make_shared<Table>("TWTR", schema);
    Rng rng(99);
    const char* texts[] = {"wine merlot tonight", "pasta tasty dinner",
                           "plain words here", "yacht champagne",
                           "bland stale", "delicious wine brunch"};
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(t->AppendRow({Value(int64_t{i}),
                                Value(int64_t{static_cast<int64_t>(
                                    rng.Zipf(20, 0.7))}),
                                Value(texts[rng.Uniform(6)]),
                                Value(int64_t{rng.Bernoulli(0.3)
                                                  ? static_cast<int64_t>(
                                                        rng.Uniform(20))
                                                  : -1}),
                                Value(int64_t{static_cast<int64_t>(
                                    rng.Uniform(50))})})
                      .ok());
    }
    ASSERT_TRUE(catalog_.RegisterBase(t, {"tweet_id"}, &dfs_).ok());
    plan::AnnotationContext ctx{&catalog_, &views_, &udfs_};
    optimizer_ = std::make_unique<optimizer::Optimizer>(
        ctx, optimizer::CostModel());
    engine_ = std::make_unique<exec::Engine>(&dfs_, &views_,
                                             optimizer_.get());
    bfr_ = std::make_unique<rewrite::BfRewriter>(optimizer_.get(), &views_);
  }

  // Random plan generator: walks op choices keeping track of available
  // columns. Mirrors the shapes analysts write (extract -> classify/group
  // -> filter), parameterized by the RNG.
  plan::Plan RandomPlan(Rng* rng) {
    OpNodePtr node = plan::Scan("TWTR");
    std::vector<std::string> cols = {"tweet_id", "user_id", "tweet_text",
                                     "mention_user", "retweets"};
    std::string numeric_col = "retweets";
    bool aggregated = false;
    int ops = 2 + static_cast<int>(rng->Uniform(4));
    for (int i = 0; i < ops; ++i) {
      switch (rng->Uniform(4)) {
        case 0: {  // project a subset, always keeping user_id + tweet_text
          if (aggregated) break;
          std::vector<std::string> keep = {"user_id", "tweet_text"};
          for (const char* extra : {"tweet_id", "mention_user", "retweets"}) {
            if (std::find(cols.begin(), cols.end(), extra) != cols.end() &&
                rng->Bernoulli(0.5)) {
              keep.push_back(extra);
            }
          }
          if (keep.size() == cols.size()) break;
          node = plan::Project(node, keep);
          cols = keep;
          break;
        }
        case 1: {  // numeric filter on whatever numeric column survives
          if (std::find(cols.begin(), cols.end(), numeric_col) ==
              cols.end()) {
            break;
          }
          node = plan::Filter(
              node, FilterCond::Compare(
                        numeric_col,
                        rng->Bernoulli(0.5) ? afk::CmpOp::kGt
                                            : afk::CmpOp::kLt,
                        Value(static_cast<double>(rng->Uniform(40)))));
          break;
        }
        case 2: {  // classifier UDF
          if (aggregated) break;
          if (std::find(cols.begin(), cols.end(), "tweet_text") ==
              cols.end()) {
            break;
          }
          const char* udf = rng->Bernoulli(0.5) ? "UDF_CLASSIFY_WINE_SCORE"
                                                : "UDF_CLASSIFY_FOOD_SCORE";
          double thr = 0.1 + 0.2 * static_cast<double>(rng->Uniform(5));
          node = plan::Udf(node, udf, {{"threshold", Value(thr)}});
          numeric_col = std::string(udf) == "UDF_CLASSIFY_WINE_SCORE"
                            ? "wine_score"
                            : "sent_sum";
          cols = {"user_id", numeric_col};
          aggregated = true;
          break;
        }
        case 3: {  // group by user
          if (aggregated) break;
          node = plan::GroupBy(node, {"user_id"},
                               {AggSpec{AggFn::kCount, "", "n"}});
          numeric_col = "n";
          cols = {"user_id", "n"};
          aggregated = true;
          break;
        }
      }
    }
    return plan::Plan(node, "random");
  }

  // Mutates a plan the way a revision would: tweak one literal upward.
  plan::Plan Mutate(const plan::Plan& original, Rng* rng) {
    OpNodePtr root = plan::CloneTree(original.root());
    std::vector<OpNodePtr> nodes = plan::Plan(root).TopoOrder();
    // Collect mutable spots.
    std::vector<plan::OpNode*> spots;
    for (const auto& n : nodes) {
      if (n->kind == plan::OpKind::kFilter &&
          n->filter.kind == FilterCond::Kind::kCompare) {
        spots.push_back(n.get());
      }
      if (n->kind == plan::OpKind::kUdf &&
          n->udf.params.count("threshold")) {
        spots.push_back(n.get());
      }
    }
    if (!spots.empty()) {
      plan::OpNode* spot = spots[rng->Uniform(spots.size())];
      if (spot->kind == plan::OpKind::kFilter) {
        // Tighten: for kGt raise, for kLt lower.
        double lit = spot->filter.literal.ToDouble();
        spot->filter.literal = Value(spot->filter.op == afk::CmpOp::kGt
                                         ? lit + 3.0
                                         : std::max(lit - 3.0, 0.0));
      } else {
        double thr = spot->udf.params["threshold"].ToDouble();
        spot->udf.params["threshold"] = Value(thr + 0.2);  // tighten
      }
    }
    return plan::Plan(root, "mutated");
  }

  std::vector<storage::Row> SortedRows(const storage::TablePtr& t) {
    std::vector<storage::Row> rows = t->rows();
    std::sort(rows.begin(), rows.end(),
              [](const storage::Row& a, const storage::Row& b) {
                for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                  if (a[i] < b[i]) return true;
                  if (b[i] < a[i]) return false;
                }
                return a.size() < b.size();
              });
    return rows;
  }

  storage::Dfs dfs_;
  catalog::Catalog catalog_;
  catalog::ViewStore views_;
  udf::UdfRegistry udfs_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<exec::Engine> engine_;
  std::unique_ptr<rewrite::BfRewriter> bfr_;
};

TEST_P(PropertyTest, ExecutionIsDeterministic) {
  Rng rng(GetParam() * 7919 + 1);
  for (int trial = 0; trial < 5; ++trial) {
    plan::Plan p1 = RandomPlan(&rng);
    plan::Plan p2(plan::CloneTree(p1.root()), "copy");
    auto r1 = engine_->Execute(&p1);
    auto r2 = engine_->Execute(&p2);
    ASSERT_TRUE(r1.ok() && r2.ok());
    ASSERT_EQ(r1.value().table->num_rows(), r2.value().table->num_rows());
    EXPECT_EQ(r1.value().table->rows(), r2.value().table->rows());
  }
}

TEST_P(PropertyTest, AnnotationIsStable) {
  Rng rng(GetParam() * 104729 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    plan::Plan p1 = RandomPlan(&rng);
    plan::Plan p2(plan::CloneTree(p1.root()), "copy");
    ASSERT_TRUE(optimizer_->Prepare(&p1).ok());
    ASSERT_TRUE(optimizer_->Prepare(&p2).ok());
    EXPECT_TRUE(p1.root()->afk == p2.root()->afk);
    EXPECT_EQ(plan::Fingerprint(p1.root()), plan::Fingerprint(p2.root()));
    EXPECT_GE(p1.root()->est_rows, 0.0);
  }
}

// The headline property: any rewrite BFREWRITE chooses computes exactly the
// same result as the original plan.
TEST_P(PropertyTest, RewritesAreAlwaysEquivalent) {
  Rng rng(GetParam() * 6151 + 17);
  int improved_count = 0;
  for (int trial = 0; trial < 6; ++trial) {
    plan::Plan base = RandomPlan(&rng);
    auto seed_run = engine_->Execute(&base);  // populate views
    ASSERT_TRUE(seed_run.ok());

    plan::Plan revised = Mutate(base, &rng);
    plan::Plan revised_copy(plan::CloneTree(revised.root()), "orig");

    auto outcome = bfr_->Rewrite(&revised);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome->improved) ++improved_count;

    plan::Plan best = outcome->plan;
    auto rewr_run = engine_->Execute(&best);
    auto orig_run = engine_->Execute(&revised_copy);
    ASSERT_TRUE(rewr_run.ok() && orig_run.ok());
    EXPECT_EQ(SortedRows(orig_run.value().table),
              SortedRows(rewr_run.value().table))
        << "rewrite changed the result for seed " << GetParam() << " trial "
        << trial;
  }
  // Mutated revisions tighten predicates, so most should find rewrites.
  EXPECT_GT(improved_count, 0);
}

// The estimated cost of the chosen rewrite never exceeds the original
// plan's estimated cost (the rewriter can always fall back to the original).
TEST_P(PropertyTest, RewriteNeverCostsMoreThanOriginal) {
  Rng rng(GetParam() * 31 + 5);
  for (int trial = 0; trial < 6; ++trial) {
    plan::Plan base = RandomPlan(&rng);
    ASSERT_TRUE(engine_->Execute(&base).ok());
    plan::Plan revised = Mutate(base, &rng);
    auto outcome = bfr_->Rewrite(&revised);
    ASSERT_TRUE(outcome.ok());
    EXPECT_LE(outcome->est_cost, outcome->original_cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace opd
