// Tests for the synthetic data generators and the 8x4 analyst workload.

#include <gtest/gtest.h>

#include <set>

#include "plan/annotate.h"
#include "plan/fingerprint.h"
#include "udf/builtin_udfs.h"
#include "workload/datagen.h"
#include "workload/queries.h"
#include "workload/scenarios.h"

namespace opd::workload {
namespace {

TEST(DataGenTest, TwitterLogShape) {
  DataGenConfig config;
  config.n_tweets = 1000;
  auto t = GenerateTwitterLog(config);
  EXPECT_EQ(t->name(), "TWTR");
  EXPECT_EQ(t->num_rows(), 1000u);
  ASSERT_TRUE(t->schema().Has("tweet_id"));
  ASSERT_TRUE(t->schema().Has("user_id"));
  ASSERT_TRUE(t->schema().Has("tweet_text"));
  ASSERT_TRUE(t->schema().Has("mention_user"));
  ASSERT_TRUE(t->schema().Has("geo"));
  ASSERT_TRUE(t->schema().Has("raw_meta"));
  // Wide log: more columns than any query consumes.
  EXPECT_GE(t->schema().num_columns(), 10u);
}

TEST(DataGenTest, Deterministic) {
  DataGenConfig config;
  config.n_tweets = 200;
  auto a = GenerateTwitterLog(config);
  auto b = GenerateTwitterLog(config);
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(a->row(i), b->row(i));
  }
}

TEST(DataGenTest, DifferentSeedsDiffer) {
  DataGenConfig c1, c2;
  c1.n_tweets = c2.n_tweets = 200;
  c2.seed = c1.seed + 1;
  auto a = GenerateTwitterLog(c1);
  auto b = GenerateTwitterLog(c2);
  bool any_diff = false;
  for (size_t i = 0; i < a->num_rows() && !any_diff; ++i) {
    if (!(a->row(i) == b->row(i))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DataGenTest, MentionsCreateRepeatedPairs) {
  DataGenConfig config;
  config.n_tweets = 2000;
  auto t = GenerateTwitterLog(config);
  size_t uid = *t->schema().IndexOf("user_id");
  size_t mid = *t->schema().IndexOf("mention_user");
  std::map<std::pair<int64_t, int64_t>, int> pair_counts;
  for (const auto& row : t->rows()) {
    int64_t m = row[mid].as_int64();
    if (m < 0) continue;
    int64_t u = row[uid].as_int64();
    pair_counts[{std::min(u, m), std::max(u, m)}]++;
  }
  EXPECT_GT(pair_counts.size(), 10u);
  int max_count = 0;
  for (const auto& [_, c] : pair_counts) max_count = std::max(max_count, c);
  // Friendship-strength thresholds need repeated pairs.
  EXPECT_GE(max_count, 3);
}

TEST(DataGenTest, SomeGeoValidSomeNot) {
  DataGenConfig config;
  config.n_tweets = 500;
  auto t = GenerateTwitterLog(config);
  size_t gi = *t->schema().IndexOf("geo");
  int valid = 0, invalid = 0;
  for (const auto& row : t->rows()) {
    double lat, lon;
    if (udf::ParseLatLon(row[gi].as_string(), &lat, &lon)) {
      ++valid;
    } else {
      ++invalid;
    }
  }
  EXPECT_GT(valid, 100);
  EXPECT_GT(invalid, 50);
}

TEST(DataGenTest, LandmarksHaveCategoriesAndMenus) {
  DataGenConfig config;
  config.n_locations = 300;
  auto t = GenerateLandmarks(config);
  EXPECT_EQ(t->num_rows(), 300u);
  size_t ci = *t->schema().IndexOf("category");
  size_t mi = *t->schema().IndexOf("menu_text");
  std::set<std::string> categories;
  int menus = 0;
  for (const auto& row : t->rows()) {
    categories.insert(row[ci].as_string());
    if (!row[mi].as_string().empty()) ++menus;
  }
  EXPECT_TRUE(categories.count("wine_bar"));
  EXPECT_TRUE(categories.count("restaurant"));
  EXPECT_GT(menus, 50);
}

TEST(DataGenTest, CheckinsReferenceValidEntities) {
  DataGenConfig config;
  config.n_checkins = 500;
  auto t = GenerateFoursquareLog(config);
  size_t ui = *t->schema().IndexOf("user_id");
  size_t li = *t->schema().IndexOf("location_id");
  for (const auto& row : t->rows()) {
    EXPECT_GE(row[ui].as_int64(), 0);
    EXPECT_LT(row[ui].as_int64(),
              static_cast<int64_t>(config.n_users));
    EXPECT_GE(row[li].as_int64(), 0);
    EXPECT_LT(row[li].as_int64(),
              static_cast<int64_t>(config.n_locations));
  }
}

// All 32 workload queries must build and annotate.
class WorkloadQueries : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadQueries, BuildsAndAnnotates) {
  static std::unique_ptr<TestBed> bed = [] {
    TestBedConfig config;
    config.data.n_tweets = 500;
    config.data.n_checkins = 300;
    config.data.n_locations = 100;
    config.calibrate_udfs = false;
    auto result = TestBed::Create(config);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  int analyst = GetParam() / 10;
  int version = GetParam() % 10;
  auto plan = BuildQuery(analyst, version);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->name(), "A" + std::to_string(analyst) + "v" +
                              std::to_string(version));
  plan::Plan p = std::move(plan).value();
  ASSERT_TRUE(bed->optimizer().Prepare(&p).ok())
      << "annotation failed for " << p.name();
  // Every query uses at least one UDF (Section 8.1).
  bool has_udf = false;
  size_t jobs = 0;
  for (const auto& node : p.TopoOrder()) {
    if (node->kind == plan::OpKind::kUdf) has_udf = true;
    if (node->kind != plan::OpKind::kScan) ++jobs;
  }
  EXPECT_TRUE(has_udf) << p.name() << " has no UDF";
  EXPECT_GE(jobs, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, WorkloadQueries,
    ::testing::Values(11, 12, 13, 14, 21, 22, 23, 24, 31, 32, 33, 34, 41, 42,
                      43, 44, 51, 52, 53, 54, 61, 62, 63, 64, 71, 72, 73, 74,
                      81, 82, 83, 84),
    [](const ::testing::TestParamInfo<int>& info) {
      return "A" + std::to_string(info.param / 10) + "v" +
             std::to_string(info.param % 10);
    });

TEST(WorkloadTest, InvalidQueryIdsRejected) {
  EXPECT_FALSE(BuildQuery(0, 1).ok());
  EXPECT_FALSE(BuildQuery(9, 1).ok());
  EXPECT_FALSE(BuildQuery(1, 0).ok());
  EXPECT_FALSE(BuildQuery(1, 5).ok());
}

TEST(WorkloadTest, QueriesAreDeterministic) {
  auto p1 = BuildQuery(1, 2);
  auto p2 = BuildQuery(1, 2);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(plan::Fingerprint(p1->root()), plan::Fingerprint(p2->root()));
}

TEST(WorkloadTest, VersionsDiffer) {
  for (int analyst = 1; analyst <= kNumAnalysts; ++analyst) {
    std::set<std::string> prints;
    for (int version = 1; version <= kNumVersions; ++version) {
      auto p = BuildQuery(analyst, version);
      ASSERT_TRUE(p.ok());
      prints.insert(plan::Fingerprint(p->root()));
    }
    EXPECT_EQ(prints.size(), static_cast<size_t>(kNumVersions))
        << "analyst " << analyst << " has duplicate versions";
  }
}

}  // namespace
}  // namespace opd::workload
