// The parallel engine's determinism contract: running the same workload at
// any thread count produces byte-identical result tables, identical view
// fingerprints, and identical byte-count metrics (and therefore identical
// modeled cluster time). Thread count changes only wall-clock time.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "workload/scenarios.h"

namespace opd::workload {
namespace {

// Everything one workload run produces that must not depend on threading.
struct WorkloadSnapshot {
  std::vector<std::vector<storage::Row>> tables;
  std::vector<std::string> fingerprints;  // sorted view fingerprints
  std::vector<uint64_t> bytes;            // read/shuffled/written per run
  std::vector<double> sim_times;
  int jobs = 0;
  int views_created = 0;
};

// Runs a scenario-style slice of the paper workload: three analysts'
// original queries (projections, filters, joins, group-bys, and UDF
// pipelines), then a rewritten revision that reuses the accumulated
// opportunistic views.
WorkloadSnapshot RunWorkload(int num_threads, int num_reduce_tasks = 0) {
  TestBedConfig config;
  config.data.n_tweets = 400;
  config.data.n_checkins = 250;
  config.data.n_locations = 60;
  config.data.n_users = 40;
  config.calibrate_udfs = false;
  config.session.engine.num_threads = num_threads;
  config.session.engine.num_reduce_tasks = num_reduce_tasks;
  auto bed_result = TestBed::Create(config);
  EXPECT_TRUE(bed_result.ok()) << bed_result.status().ToString();
  std::unique_ptr<TestBed> bed = std::move(bed_result).value();

  WorkloadSnapshot snap;
  auto record = [&snap](const exec::ExecResult& run) {
    snap.tables.push_back(run.table->rows());
    snap.bytes.push_back(run.metrics.bytes_read);
    snap.bytes.push_back(run.metrics.bytes_shuffled);
    snap.bytes.push_back(run.metrics.bytes_written);
    snap.sim_times.push_back(run.metrics.sim_time_s);
    snap.jobs += run.metrics.jobs;
    snap.views_created += run.metrics.views_created;
  };

  for (int analyst = 1; analyst <= 3; ++analyst) {
    auto run = bed->RunOriginal(analyst, 1);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    if (run.ok()) record(*run);
  }
  auto rewritten = bed->RunRewritten(1, 2);
  EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  if (rewritten.ok()) record(rewritten->exec);

  for (const auto* def : bed->views().All()) {
    snap.fingerprints.push_back(def->fingerprint);
  }
  std::sort(snap.fingerprints.begin(), snap.fingerprints.end());
  return snap;
}

void ExpectIdentical(const WorkloadSnapshot& a, const WorkloadSnapshot& b) {
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t t = 0; t < a.tables.size(); ++t) {
    ASSERT_EQ(a.tables[t].size(), b.tables[t].size()) << "table " << t;
    for (size_t r = 0; r < a.tables[t].size(); ++r) {
      ASSERT_EQ(a.tables[t][r], b.tables[t][r])
          << "table " << t << " row " << r;
    }
  }
  EXPECT_EQ(a.fingerprints, b.fingerprints);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.views_created, b.views_created);
  ASSERT_EQ(a.sim_times.size(), b.sim_times.size());
  for (size_t i = 0; i < a.sim_times.size(); ++i) {
    // Modeled time is pure arithmetic over the (identical) byte counts.
    EXPECT_DOUBLE_EQ(a.sim_times[i], b.sim_times[i]) << "run " << i;
  }
}

TEST(ParallelDeterminismTest, SameResultsAtOneTwoAndEightThreads) {
  WorkloadSnapshot one = RunWorkload(1);
  WorkloadSnapshot two = RunWorkload(2);
  WorkloadSnapshot eight = RunWorkload(8);
  ASSERT_FALSE(one.tables.empty());
  ExpectIdentical(one, two);
  ExpectIdentical(one, eight);
}

TEST(ParallelDeterminismTest, ReduceTaskCountDoesNotChangeResults) {
  // Bucket granularity, like thread count, must never leak into results:
  // force an odd bucket count well off the bytes-derived default.
  WorkloadSnapshot derived = RunWorkload(1);
  WorkloadSnapshot forced = RunWorkload(4, /*num_reduce_tasks=*/13);
  ExpectIdentical(derived, forced);
}

}  // namespace
}  // namespace opd::workload
