// The parallel engine's determinism contract: running the same workload at
// any thread count produces byte-identical result tables, identical view
// fingerprints, and identical byte-count metrics (and therefore identical
// modeled cluster time). Thread count changes only wall-clock time.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "session/session.h"
#include "storage/table.h"
#include "workload/scenarios.h"

namespace opd::workload {
namespace {

// Everything one workload run produces that must not depend on threading.
struct WorkloadSnapshot {
  std::vector<std::vector<storage::Row>> tables;
  std::vector<std::string> fingerprints;  // sorted view fingerprints
  std::vector<uint64_t> bytes;            // read/shuffled/written per run
  std::vector<double> sim_times;
  int jobs = 0;
  int views_created = 0;
};

// Runs a scenario-style slice of the paper workload: three analysts'
// original queries (projections, filters, joins, group-bys, and UDF
// pipelines), then a rewritten revision that reuses the accumulated
// opportunistic views.
WorkloadSnapshot RunWorkload(int num_threads, int num_reduce_tasks = 0,
                             bool pipelined = true, bool vectorized = true,
                             bool fused_exprs = true, bool flat_hash = true) {
  TestBedConfig config;
  config.data.n_tweets = 400;
  config.data.n_checkins = 250;
  config.data.n_locations = 60;
  config.data.n_users = 40;
  config.calibrate_udfs = false;
  config.session.engine.num_threads = num_threads;
  config.session.engine.num_reduce_tasks = num_reduce_tasks;
  config.session.engine.pipelined = pipelined;
  config.session.engine.vectorized = vectorized;
  config.session.engine.fused_exprs = fused_exprs;
  config.session.engine.flat_hash = flat_hash;
  auto bed_result = TestBed::Create(config);
  EXPECT_TRUE(bed_result.ok()) << bed_result.status().ToString();
  std::unique_ptr<TestBed> bed = std::move(bed_result).value();

  WorkloadSnapshot snap;
  auto record = [&snap](const exec::ExecResult& run) {
    snap.tables.push_back(run.table->rows());
    snap.bytes.push_back(run.metrics.bytes_read);
    snap.bytes.push_back(run.metrics.bytes_shuffled);
    snap.bytes.push_back(run.metrics.bytes_written);
    snap.sim_times.push_back(run.metrics.sim_time_s);
    snap.jobs += run.metrics.jobs;
    snap.views_created += run.metrics.views_created;
  };

  for (int analyst = 1; analyst <= 3; ++analyst) {
    auto run = bed->RunOriginal(analyst, 1);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    if (run.ok()) record(*run);
  }
  auto rewritten = bed->RunRewritten(1, 2);
  EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  if (rewritten.ok()) record(rewritten->exec);

  for (const auto* def : bed->views().All()) {
    snap.fingerprints.push_back(def->fingerprint);
  }
  std::sort(snap.fingerprints.begin(), snap.fingerprints.end());
  return snap;
}

void ExpectIdentical(const WorkloadSnapshot& a, const WorkloadSnapshot& b) {
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t t = 0; t < a.tables.size(); ++t) {
    ASSERT_EQ(a.tables[t].size(), b.tables[t].size()) << "table " << t;
    for (size_t r = 0; r < a.tables[t].size(); ++r) {
      ASSERT_EQ(a.tables[t][r], b.tables[t][r])
          << "table " << t << " row " << r;
    }
  }
  EXPECT_EQ(a.fingerprints, b.fingerprints);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.views_created, b.views_created);
  ASSERT_EQ(a.sim_times.size(), b.sim_times.size());
  for (size_t i = 0; i < a.sim_times.size(); ++i) {
    // Modeled time is pure arithmetic over the (identical) byte counts.
    EXPECT_DOUBLE_EQ(a.sim_times[i], b.sim_times[i]) << "run " << i;
  }
}

TEST(ParallelDeterminismTest, SameResultsAtOneTwoAndEightThreads) {
  WorkloadSnapshot one = RunWorkload(1);
  WorkloadSnapshot two = RunWorkload(2);
  WorkloadSnapshot eight = RunWorkload(8);
  ASSERT_FALSE(one.tables.empty());
  ExpectIdentical(one, two);
  ExpectIdentical(one, eight);
}

TEST(ParallelDeterminismTest, ReduceTaskCountDoesNotChangeResults) {
  // Bucket granularity, like thread count, must never leak into results:
  // force an odd bucket count well off the bytes-derived default.
  WorkloadSnapshot derived = RunWorkload(1);
  WorkloadSnapshot forced = RunWorkload(4, /*num_reduce_tasks=*/13);
  ExpectIdentical(derived, forced);
}

// The full execution-mode matrix: pipelined (default) must produce the exact
// snapshot the phased fallback produces, per interpreter mode, at every
// thread count — covering {1,2,4,8} x {row,batch} x {pipelined,phased}.
TEST(ParallelDeterminismTest, PipelinedMatchesPhasedRowMode) {
  WorkloadSnapshot phased =
      RunWorkload(1, 0, /*pipelined=*/false, /*vectorized=*/false);
  ASSERT_FALSE(phased.tables.empty());
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(
        phased, RunWorkload(threads, 0, /*pipelined=*/true,
                            /*vectorized=*/false));
  }
}

TEST(ParallelDeterminismTest, PipelinedMatchesPhasedBatchMode) {
  WorkloadSnapshot phased =
      RunWorkload(1, 0, /*pipelined=*/false, /*vectorized=*/true);
  ASSERT_FALSE(phased.tables.empty());
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(
        phased, RunWorkload(threads, 0, /*pipelined=*/true,
                            /*vectorized=*/true));
  }
}

// Fused expression programs (the default) against the unfused per-operator
// batch kernels: same snapshot, per scheduling mode, at 1 and 8 threads.
// Together with the two tests above this closes the matrix
// {fused,unfused} x {pipelined,phased} x threads on batch mode.
TEST(ParallelDeterminismTest, FusedExprsMatchUnfusedBatchMode) {
  WorkloadSnapshot unfused = RunWorkload(1, 0, /*pipelined=*/false,
                                         /*vectorized=*/true,
                                         /*fused_exprs=*/false);
  ASSERT_FALSE(unfused.tables.empty());
  for (int threads : {1, 8}) {
    for (bool pipelined : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " pipelined=" + std::to_string(pipelined));
      ExpectIdentical(unfused,
                      RunWorkload(threads, 0, pipelined, /*vectorized=*/true,
                                  /*fused_exprs=*/true));
    }
  }
}

// Flat open-addressing shuffle tables (the default) against the legacy
// std::unordered_map reduce path: the hash family and bucket mapping both
// change, but every shuffle merge normalizes order, so the snapshot must be
// byte-identical across {flat,legacy} x {row,batch} x {pipelined,phased} at
// 1 and 8 threads.
TEST(ParallelDeterminismTest, FlatHashMatchesLegacyAcrossModes) {
  WorkloadSnapshot legacy =
      RunWorkload(1, 0, /*pipelined=*/false, /*vectorized=*/false,
                  /*fused_exprs=*/true, /*flat_hash=*/false);
  ASSERT_FALSE(legacy.tables.empty());
  for (int threads : {1, 8}) {
    for (bool vectorized : {false, true}) {
      for (bool pipelined : {false, true}) {
        for (bool flat : {false, true}) {
          if (!flat && !vectorized && !pipelined && threads == 1) continue;
          SCOPED_TRACE("threads=" + std::to_string(threads) +
                       " vectorized=" + std::to_string(vectorized) +
                       " pipelined=" + std::to_string(pipelined) +
                       " flat_hash=" + std::to_string(flat));
          ExpectIdentical(legacy, RunWorkload(threads, 0, pipelined,
                                              vectorized,
                                              /*fused_exprs=*/true, flat));
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, PhasedFallbackIsThreadCountInvariant) {
  WorkloadSnapshot one = RunWorkload(1, 0, /*pipelined=*/false);
  WorkloadSnapshot eight = RunWorkload(8, 0, /*pipelined=*/false);
  ExpectIdentical(one, eight);
}

// Heavy key skew with a forced odd bucket count: the light buckets' last
// producer hands them off (per-bucket countdown latch) while the heavy
// bucket's producers are still running, exercising the early-handoff path
// that a uniform workload rarely hits. Results must still be byte-identical
// to the serial phased run.
TEST(ParallelDeterminismTest, SkewedKeysAreThreadAndModeInvariant) {
  auto run_skewed = [](int num_threads, bool pipelined) {
    SessionOptions options;
    options.engine.num_threads = num_threads;
    options.engine.num_reduce_tasks = 7;
    options.engine.pipelined = pipelined;
    auto session = Session::Create(options);
    EXPECT_TRUE(session.ok()) << session.status().ToString();

    auto skew = std::make_shared<storage::Table>(
        "SKEW",
        storage::Schema({{"k", storage::DataType::kInt64},
                         {"v", storage::DataType::kInt64}}));
    // ~90% of rows share one key; the rest spread over 40 keys.
    for (int64_t i = 0; i < 4000; ++i) {
      const int64_t key = (i % 10 == 0) ? 1 + i % 40 : 0;
      EXPECT_TRUE(
          skew->AppendRow({storage::Value(key), storage::Value(i * 7 % 101)})
              .ok());
    }
    EXPECT_TRUE(
        (*session)
            ->RegisterTable(storage::TablePtr(std::move(skew)), {"k"})
            .ok());

    auto run = (*session)->Run(
        "g = scan SKEW | groupby k count(*) as n, sum(v) as s;",
        RunOptions{.rewrite = false});
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    std::vector<storage::Row> rows;
    if (run.ok() && run->table != nullptr) rows = run->table->rows();
    return rows;
  };

  const std::vector<storage::Row> serial =
      run_skewed(/*num_threads=*/1, /*pipelined=*/false);
  ASSERT_FALSE(serial.empty());
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial, run_skewed(threads, /*pipelined=*/true));
  }
}

}  // namespace
}  // namespace opd::workload
