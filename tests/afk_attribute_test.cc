// Unit tests for attribute identity and provenance signatures (Section 3.1).

#include "afk/attribute.h"

#include <gtest/gtest.h>

namespace opd::afk {
namespace {

using storage::DataType;

TEST(AttributeTest, BaseIdentity) {
  Attribute a = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  Attribute b = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_EQ(a.signature_hash(), b.signature_hash());
}

TEST(AttributeTest, BaseDifferentRelationDiffers) {
  Attribute a = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  Attribute b = Attribute::Base("FSQ", "user_id", DataType::kInt64);
  EXPECT_FALSE(a == b);
}

TEST(AttributeTest, BaseDifferentNameDiffers) {
  Attribute a = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  Attribute b = Attribute::Base("TWTR", "tweet_id", DataType::kInt64);
  EXPECT_FALSE(a == b);
}

TEST(AttributeTest, BaseProperties) {
  Attribute a = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  EXPECT_TRUE(a.is_base());
  EXPECT_EQ(a.relation(), "TWTR");
  EXPECT_EQ(a.name(), "user_id");
  EXPECT_EQ(a.type(), DataType::kInt64);
  EXPECT_TRUE(a.inputs().empty());
}

TEST(AttributeTest, DerivedIdentityIsStructural) {
  Attribute uid = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  Attribute text = Attribute::Base("TWTR", "tweet_text", DataType::kString);
  Attribute s1 = Attribute::Derived("sent_sum", "UDF_FOODIES", {uid, text},
                                    "ctx", "", DataType::kDouble);
  Attribute s2 = Attribute::Derived("sent_sum", "UDF_FOODIES", {uid, text},
                                    "ctx", "", DataType::kDouble);
  EXPECT_EQ(s1, s2);
  EXPECT_FALSE(s1.is_base());
  EXPECT_EQ(s1.producer(), "UDF_FOODIES");
}

TEST(AttributeTest, DerivedInputOrderInsensitive) {
  Attribute uid = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  Attribute text = Attribute::Base("TWTR", "tweet_text", DataType::kString);
  Attribute s1 = Attribute::Derived("s", "U", {uid, text}, "c", "",
                                    DataType::kDouble);
  Attribute s2 = Attribute::Derived("s", "U", {text, uid}, "c", "",
                                    DataType::kDouble);
  EXPECT_EQ(s1, s2);
}

TEST(AttributeTest, DerivedDifferentProducerDiffers) {
  Attribute uid = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  Attribute s1 =
      Attribute::Derived("s", "UDF_A", {uid}, "c", "", DataType::kDouble);
  Attribute s2 =
      Attribute::Derived("s", "UDF_B", {uid}, "c", "", DataType::kDouble);
  EXPECT_FALSE(s1 == s2);
}

TEST(AttributeTest, DerivedDifferentContextDiffers) {
  Attribute uid = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  Attribute s1 =
      Attribute::Derived("s", "U", {uid}, "ctx1", "", DataType::kDouble);
  Attribute s2 =
      Attribute::Derived("s", "U", {uid}, "ctx2", "", DataType::kDouble);
  EXPECT_FALSE(s1 == s2);
}

TEST(AttributeTest, DerivedDifferentParamsDiffers) {
  Attribute lat = Attribute::Base("TWTR", "lat", DataType::kDouble);
  Attribute t1 = Attribute::Derived("tile_id", "UDF_GEO_TILE", {lat}, "c",
                                    "tile_size=1", DataType::kInt64);
  Attribute t2 = Attribute::Derived("tile_id", "UDF_GEO_TILE", {lat}, "c",
                                    "tile_size=0.5", DataType::kInt64);
  EXPECT_FALSE(t1 == t2);
}

TEST(AttributeTest, DerivedDifferentInputsDiffers) {
  Attribute a = Attribute::Base("TWTR", "a", DataType::kInt64);
  Attribute b = Attribute::Base("TWTR", "b", DataType::kInt64);
  Attribute s1 = Attribute::Derived("s", "U", {a}, "c", "", DataType::kDouble);
  Attribute s2 = Attribute::Derived("s", "U", {b}, "c", "", DataType::kDouble);
  EXPECT_FALSE(s1 == s2);
}

TEST(AttributeTest, NestedDerivation) {
  Attribute geo = Attribute::Base("TWTR", "geo", DataType::kString);
  Attribute lat = Attribute::Derived("lat", "UDF_EXTRACT_LATLON", {geo}, "c",
                                     "", DataType::kDouble);
  Attribute tile = Attribute::Derived("tile_id", "UDF_GEO_TILE", {lat}, "c",
                                      "tile_size=1", DataType::kInt64);
  ASSERT_EQ(tile.inputs().size(), 1u);
  EXPECT_EQ(tile.inputs()[0], lat);
  EXPECT_EQ(tile.inputs()[0].inputs()[0], geo);
}

TEST(AttributeTest, OrderingIsBySignature) {
  Attribute a = Attribute::Base("A", "x", DataType::kInt64);
  Attribute b = Attribute::Base("B", "x", DataType::kInt64);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(AttributeTest, ToStringIsInformative) {
  Attribute a = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  EXPECT_NE(a.ToString().find("TWTR"), std::string::npos);
  EXPECT_NE(a.ToString().find("user_id"), std::string::npos);
}

}  // namespace
}  // namespace opd::afk
