// Unit tests for the common ThreadPool and its ParallelFor helper: task
// completion, serial-path ordering, and exception/Status propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace opd {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  ThreadPool pool_neg(-3);
  EXPECT_GE(pool_neg.num_threads(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsResolvesAuto) {
  EXPECT_GE(ThreadPool::DefaultThreads(0), 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(5), 5);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // join on destruction after the queue drains
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, TryRunOneReturnsFalseOnEmptyQueue) {
  ThreadPool pool(1);
  // Park the single worker so it cannot steal the queued task below. The
  // gate guarantees the *worker* owns the parked task (otherwise this
  // thread's TryRunOne below could pop it and spin on its own flag).
  std::atomic<bool> release{false};
  CountdownLatch parked_gate(1);
  auto parked = pool.Submit([&release, &parked_gate] {
    parked_gate.CountDown();
    while (!release.load()) std::this_thread::yield();
  });
  parked_gate.Wait();

  EXPECT_FALSE(pool.TryRunOne());  // nothing queued yet

  std::atomic<int> ran{0};
  pool.Submit([&ran] { ++ran; });
  EXPECT_TRUE(pool.TryRunOne());  // runs the queued task on this thread
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(pool.TryRunOne());  // queue drained

  release.store(true);
  parked.get();
}

TEST(CountdownLatchTest, CountDownReturnsTrueExactlyOnce) {
  CountdownLatch latch(3);
  EXPECT_FALSE(latch.Done());
  EXPECT_FALSE(latch.CountDown());
  EXPECT_FALSE(latch.CountDown());
  EXPECT_TRUE(latch.CountDown());  // the call that reaches zero
  EXPECT_TRUE(latch.Done());
  EXPECT_FALSE(latch.CountDown());  // already zero: clamped, not true again
}

TEST(CountdownLatchTest, CountDownByNClampsAtZero) {
  CountdownLatch latch(5);
  EXPECT_FALSE(latch.CountDown(2));
  EXPECT_TRUE(latch.CountDown(10));  // overshoot clamps and signals once
  EXPECT_TRUE(latch.Done());
}

TEST(CountdownLatchTest, ZeroCountStartsDone) {
  CountdownLatch latch(0);
  EXPECT_TRUE(latch.Done());
  latch.Wait();  // must not block
}

TEST(CountdownLatchTest, WaitBlocksUntilCountReachesZero) {
  ThreadPool pool(4);
  CountdownLatch latch(8);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&latch, &done] {
      ++done;
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(done.load(), 8);  // every CountDown happened-before Wait returned
}

TEST(CountdownLatchTest, WaitWithPoolHelpsDrainQueuedTasks) {
  // One worker, parked: the only way the latch tasks can run is if Wait()
  // itself drains them via TryRunOne. A sleeping Wait would deadlock here
  // (enforced by the 60s test timeout rather than a flaky sleep).
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  CountdownLatch parked_gate(1);
  pool.Submit([&release, &parked_gate] {
    parked_gate.CountDown();
    while (!release.load()) std::this_thread::yield();
  });
  parked_gate.Wait();  // worker is now parked

  CountdownLatch latch(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&latch, &ran] {
      ++ran;
      latch.CountDown();
    });
  }
  latch.Wait(&pool);  // must help: the worker cannot
  EXPECT_EQ(ran.load(), 4);
  release.store(true);
}

TEST(CountdownLatchTest, TasksSubmittingTasksResolveViaHelpingWait) {
  // Pipelined handoff shape: producers submit consumers mid-flight. The
  // waiter counts both generations and helps drain, so even a 1-thread pool
  // cannot deadlock.
  ThreadPool pool(1);
  constexpr int kProducers = 3;
  CountdownLatch all(kProducers * 2);  // producers + spawned consumers
  std::atomic<int> consumed{0};
  for (int p = 0; p < kProducers; ++p) {
    pool.Submit([&pool, &all, &consumed] {
      pool.Submit([&all, &consumed] {
        ++consumed;
        all.CountDown();
      });
      all.CountDown();
    });
  }
  all.Wait(&pool);
  EXPECT_EQ(consumed.load(), kProducers);
}

TEST(ParallelForTest, SerialPathRunsIndicesInOrder) {
  // Null pool => inline execution on the calling thread, in index order.
  std::vector<size_t> order;
  Status st = ParallelFor(nullptr, 10, [&order](size_t i) {
    order.push_back(i);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  std::vector<size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ParallelForTest, ParallelRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  Status st = ParallelFor(&pool, hits.size(), [&hits](size_t i) {
    ++hits[i];
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ReturnsLowestIndexFailureDeterministically) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    Status st = ParallelFor(&pool, 16, [](size_t i) {
      if (i % 2 == 1) {
        return Status::InvalidArgument("bad index " + std::to_string(i));
      }
      return Status::OK();
    });
    ASSERT_FALSE(st.ok());
    // Index 1 is the lowest failure regardless of completion order.
    EXPECT_EQ(st.message(), "bad index 1");
  }
}

TEST(ParallelForTest, ConvertsThrownExceptionToInternalStatus) {
  ThreadPool pool(2);
  Status st = ParallelFor(&pool, 8, [](size_t i) -> Status {
    if (i == 3) throw std::runtime_error("kaboom");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("kaboom"), std::string::npos);
}

TEST(ParallelForTest, AllIndicesRunEvenWhenOneFails) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  Status st = ParallelFor(&pool, 32, [&count](size_t i) -> Status {
    ++count;
    return i == 0 ? Status::Internal("first fails") : Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(count.load(), 32);  // failure does not cancel later tasks
}

TEST(ParallelForTest, ReportsMaxTaskSeconds) {
  ThreadPool pool(2);
  double max_task_s = -1;
  Status st = ParallelFor(
      &pool, 4, [](size_t) { return Status::OK(); }, &max_task_s);
  ASSERT_TRUE(st.ok());
  EXPECT_GE(max_task_s, 0.0);
}

}  // namespace
}  // namespace opd
