// Tests for the cost model (Section 4.2), estimation, and calibration.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "optimizer/calibration.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "storage/dfs.h"
#include "udf/builtin_udfs.h"

namespace opd::optimizer {
namespace {

using plan::JobCostInfo;
using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

TEST(CostModelTest, JobCostComponents) {
  CostModel model;
  const double mb = 1024.0 * 1024.0;
  JobCostInfo c = model.JobCost(100 * mb, 50 * mb, 10 * mb, 1.0, 1.0, true);
  EXPECT_GT(c.read_s, 0);
  EXPECT_GT(c.shuffle_s, 0);
  EXPECT_GT(c.write_s, 0);
  EXPECT_GT(c.cpu_s, 0);
  EXPECT_DOUBLE_EQ(c.latency_s, model.params().job_latency_s);
  EXPECT_NEAR(c.total_s,
              c.read_s + c.cpu_s + c.shuffle_s + c.write_s + c.latency_s,
              1e-9);
}

TEST(CostModelTest, MapOnlyJobHasNoShuffleCost) {
  CostModel model;
  JobCostInfo c = model.JobCost(1e6, 1e6, 1e5, 1.0, 1.0, false);
  EXPECT_DOUBLE_EQ(c.shuffle_s, 0.0);
}

TEST(CostModelTest, CostMonotoneInInputSize) {
  CostModel model;
  double small = model.JobCost(1e6, 1e6, 1e5, 1, 1, true).total_s;
  double large = model.JobCost(1e8, 1e8, 1e7, 1, 1, true).total_s;
  EXPECT_LT(small, large);
}

TEST(CostModelTest, ScalarsScaleCpu) {
  CostModel model;
  JobCostInfo base = model.JobCost(1e8, 1e8, 1e6, 1.0, 1.0, true);
  JobCostInfo scaled = model.JobCost(1e8, 1e8, 1e6, 8.0, 4.0, true);
  EXPECT_GT(scaled.cpu_s, base.cpu_s);
  EXPECT_DOUBLE_EQ(scaled.read_s, base.read_s);
}

TEST(CostModelTest, DataScaleMultiplies) {
  CostParams params;
  params.data_scale = 1000.0;
  CostModel scaled(params);
  CostModel unscaled;
  EXPECT_NEAR(scaled.ReadCost(1e6), 1000.0 * unscaled.ReadCost(1e6), 1e-9);
}

TEST(CostModelTest, CheapestOpBelowAnyJob) {
  // The non-subsumable cost property's baseline: one cheapest-op pass never
  // exceeds the CPU cost of a calibrated job on the same bytes.
  CostModel model;
  double bytes = 5e7;
  double cheapest = model.CheapestOpCpu(bytes);
  JobCostInfo job = model.JobCost(bytes, 0, 0, 1.0, 1.0, false);
  EXPECT_LE(cheapest, job.cpu_s + 1e-12);
}

TEST(CalibrationTest, SampleTableFraction) {
  Schema schema({Column{"x", DataType::kInt64}});
  Table t("t", schema);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(int64_t{i})}).ok());
  }
  Table s = SampleTable(t, 0.01, 7);
  EXPECT_GT(s.num_rows(), 20u);
  EXPECT_LT(s.num_rows(), 500u);
}

TEST(CalibrationTest, TinyTableStillSampled) {
  Schema schema({Column{"x", DataType::kInt64}});
  Table t("t", schema);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(int64_t{i})}).ok());
  }
  Table s = SampleTable(t, 0.01, 7);
  EXPECT_GT(s.num_rows(), 0u);
}

TEST(CalibrationTest, SetsScalarsAndExpansion) {
  Schema schema({Column{"user_id", DataType::kInt64},
                 Column{"tweet_text", DataType::kString},
                 Column{"mention_user", DataType::kInt64}});
  Table t("tweets", schema);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(int64_t{i % 50}),
                             Value("some wine text with words to score"),
                             Value(int64_t{-1})})
                    .ok());
  }
  udf::UdfDefinition udf = udf::MakeClassifyWineScoreUdf();
  CalibrationOptions opts;
  opts.sample_fraction = 0.05;
  ASSERT_TRUE(CalibrateUdf(&udf, t, {{"threshold", Value(0.1)}}, opts).ok());
  // Scalars clamped to [1, 64]: the OPTCOST floor invariant.
  EXPECT_GE(udf.map_scalar, opts.min_scalar);
  EXPECT_LE(udf.map_scalar, opts.max_scalar);
  EXPECT_GE(udf.reduce_scalar, opts.min_scalar);
  ASSERT_TRUE(udf.calibrated_expansion.has_value());
  EXPECT_GT(udf.expansion(), 0.0);
  EXPECT_LT(udf.expansion(), 1.0);  // aggregation contracts
}

TEST(CalibrationTest, EmptyInputFails) {
  Schema schema({Column{"user_id", DataType::kInt64},
                 Column{"tweet_text", DataType::kString}});
  Table empty("t", schema);
  udf::UdfDefinition udf = udf::MakeClassifyWineScoreUdf();
  EXPECT_FALSE(CalibrateUdf(&udf, empty, {}).ok());
}

class OptimizerEstimationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs_).ok());
    Schema schema({Column{"tweet_id", DataType::kInt64},
                   Column{"user_id", DataType::kInt64},
                   Column{"tweet_text", DataType::kString}});
    auto t = std::make_shared<Table>("TWTR", schema);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(t->AppendRow({Value(int64_t{i}), Value(int64_t{i % 40}),
                                Value("tweet text content here")})
                      .ok());
    }
    ASSERT_TRUE(catalog_.RegisterBase(t, {"tweet_id"}, &dfs_).ok());
    plan::AnnotationContext ctx{&catalog_, &views_, &udfs_};
    optimizer_ = std::make_unique<Optimizer>(ctx, CostModel());
  }

  storage::Dfs dfs_;
  catalog::Catalog catalog_;
  catalog::ViewStore views_;
  udf::UdfRegistry udfs_;
  std::unique_ptr<Optimizer> optimizer_;
};

TEST_F(OptimizerEstimationTest, ScanUsesExactStats) {
  plan::Plan p(plan::Scan("TWTR"));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  EXPECT_DOUBLE_EQ(p.root()->est_rows, 1000.0);
  EXPECT_GT(p.root()->est_out_bytes, 0.0);
}

TEST_F(OptimizerEstimationTest, FilterAppliesSelectivity) {
  plan::Plan p(plan::Filter(
      plan::Scan("TWTR"),
      plan::FilterCond::Compare("user_id", afk::CmpOp::kGt,
                                Value(int64_t{10}))));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  EXPECT_LT(p.root()->est_rows, 1000.0);
  EXPECT_GT(p.root()->est_rows, 0.0);
}

TEST_F(OptimizerEstimationTest, GroupByEstimatesDistinct) {
  plan::Plan p(plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                             {plan::AggSpec{plan::AggFn::kCount, "", "c"}}));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  EXPECT_NEAR(p.root()->est_rows, 40.0, 5.0);
}

TEST_F(OptimizerEstimationTest, ProjectShrinksBytes) {
  plan::Plan full(plan::Scan("TWTR"));
  plan::Plan proj(plan::Project(plan::Scan("TWTR"), {"user_id"}));
  ASSERT_TRUE(optimizer_->Prepare(&full).ok());
  ASSERT_TRUE(optimizer_->Prepare(&proj).ok());
  EXPECT_LT(proj.root()->est_out_bytes, full.root()->est_out_bytes);
}

TEST_F(OptimizerEstimationTest, JoinCardinality) {
  auto counts = plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                              {plan::AggSpec{plan::AggFn::kCount, "", "c"}});
  auto wine = plan::Udf(plan::Project(plan::Scan("TWTR"),
                                      {"user_id", "tweet_text"}),
                        "UDF_CLASSIFY_WINE_SCORE",
                        {{"threshold", Value(0.5)}});
  plan::Plan p(plan::Join(wine, counts, {{"user_id", "user_id"}}));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  EXPECT_GT(p.root()->est_rows, 0.0);
  EXPECT_LE(p.root()->est_rows, 1000.0);
}

TEST_F(OptimizerEstimationTest, PlanCostSumsJobs) {
  plan::Plan p(plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                             {plan::AggSpec{plan::AggFn::kCount, "", "c"}}));
  auto cost = optimizer_->PlanCost(&p);
  ASSERT_TRUE(cost.ok());
  // At least one job latency.
  EXPECT_GE(*cost, optimizer_->cost_model().job_latency());
}

TEST_F(OptimizerEstimationTest, ShuffleOpsCostMoreThanMapOps) {
  plan::Plan filter(plan::Filter(
      plan::Scan("TWTR"),
      plan::FilterCond::Compare("user_id", afk::CmpOp::kGt,
                                Value(int64_t{0}))));
  plan::Plan group(plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                                 {plan::AggSpec{plan::AggFn::kCount, "", "c"}}));
  ASSERT_TRUE(optimizer_->Prepare(&filter).ok());
  ASSERT_TRUE(optimizer_->Prepare(&group).ok());
  EXPECT_GT(group.root()->cost.shuffle_s, 0.0);
  EXPECT_DOUBLE_EQ(filter.root()->cost.shuffle_s, 0.0);
}

}  // namespace
}  // namespace opd::optimizer
