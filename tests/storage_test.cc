// Unit tests for the storage layer: values, schemas, tables, and the
// simulated DFS.

#include <gtest/gtest.h>

#include "storage/dfs.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace opd::storage {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).type(), DataType::kBool);
  EXPECT_EQ(Value(int64_t{42}).as_int64(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).as_double(), 3.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(int64_t{3}) == Value(3.0));
  EXPECT_TRUE(Value(true) == Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{3}) == Value(3.5));
}

TEST(ValueTest, NumericCrossTypeHashConsistency) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value(1.5) < Value(int64_t{2}));
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_TRUE(Value::Null() < Value(int64_t{0}) ||
              Value(int64_t{0}).is_null() == false);
}

TEST(ValueTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).ToDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(true).ToDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Value("x").ToDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Null().ToDouble(), 0.0);
}

TEST(ValueTest, ByteSizeAccountsStringLength) {
  EXPECT_EQ(Value(int64_t{1}).ByteSize(), 8u);
  EXPECT_EQ(Value(std::string(10, 'a')).ByteSize(), 14u);
  EXPECT_EQ(Value::Null().ByteSize(), 1u);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value("abc").ToString(), "abc");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
}

TEST(SchemaTest, IndexOfAndHas) {
  Schema s({Column{"a", DataType::kInt64}, Column{"b", DataType::kString}});
  EXPECT_EQ(*s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("c").has_value());
  EXPECT_TRUE(s.Has("a"));
}

TEST(SchemaTest, AddColumnRejectsDuplicates) {
  Schema s({Column{"a", DataType::kInt64}});
  EXPECT_TRUE(s.AddColumn(Column{"b", DataType::kDouble}).ok());
  EXPECT_EQ(s.AddColumn(Column{"a", DataType::kInt64}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, Project) {
  Schema s({Column{"a", DataType::kInt64}, Column{"b", DataType::kString},
            Column{"c", DataType::kDouble}});
  auto p = s.Project({"c", "a"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_columns(), 2u);
  EXPECT_EQ(p->column(0).name, "c");
  EXPECT_FALSE(s.Project({"zzz"}).ok());
}

TEST(TableTest, AppendChecksArity) {
  Table t("t", Schema({Column{"a", DataType::kInt64}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(t.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, ByteSizeAndAvg) {
  Table t("t", Schema({Column{"a", DataType::kInt64},
                       Column{"s", DataType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value("xx")}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value("yyyy")}).ok());
  EXPECT_EQ(t.ByteSize(), 8u + 6u + 8u + 8u);
  EXPECT_DOUBLE_EQ(t.AvgRowBytes(), 15.0);
}

TEST(TableTest, GetByName) {
  Table t("t", Schema({Column{"a", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value(int64_t{9})}).ok());
  auto v = t.Get(0, "a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int64(), 9);
  EXPECT_FALSE(t.Get(1, "a").ok());
  EXPECT_FALSE(t.Get(0, "b").ok());
}

class DfsTest : public ::testing::Test {
 protected:
  TablePtr MakeTable(const std::string& name, int rows) {
    auto t = std::make_shared<Table>(
        name, Schema({Column{"x", DataType::kInt64}}));
    for (int i = 0; i < rows; ++i) {
      (void)const_cast<Table&>(*t).AppendRow({Value(int64_t{i})});
    }
    return t;
  }
};

TEST_F(DfsTest, WriteReadDelete) {
  Dfs dfs;
  auto t = MakeTable("t", 10);
  ASSERT_TRUE(dfs.Write("a/b", t).ok());
  EXPECT_TRUE(dfs.Exists("a/b"));
  auto r = dfs.Read("a/b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 10u);
  EXPECT_TRUE(dfs.Delete("a/b").ok());
  EXPECT_FALSE(dfs.Exists("a/b"));
  EXPECT_FALSE(dfs.Read("a/b").ok());
}

TEST_F(DfsTest, DuplicateWriteFails) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("p", MakeTable("t", 1)).ok());
  EXPECT_EQ(dfs.Write("p", MakeTable("t", 1)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DfsTest, MetricsAccounting) {
  Dfs dfs;
  auto t = MakeTable("t", 100);
  const uint64_t size = t->ByteSize();
  ASSERT_TRUE(dfs.Write("p", t).ok());
  EXPECT_EQ(dfs.metrics().bytes_written, size);
  EXPECT_EQ(dfs.used_bytes(), size);
  ASSERT_TRUE(dfs.Read("p").ok());
  ASSERT_TRUE(dfs.Read("p").ok());
  EXPECT_EQ(dfs.metrics().bytes_read, 2 * size);
}

TEST_F(DfsTest, CapacityEnforced) {
  auto t = MakeTable("t", 100);  // 800 bytes
  Dfs dfs(t->ByteSize() + 10);
  ASSERT_TRUE(dfs.Write("one", t).ok());
  EXPECT_EQ(dfs.Write("two", MakeTable("t", 100)).code(),
            StatusCode::kOutOfRange);
  // Deleting frees space.
  ASSERT_TRUE(dfs.Delete("one").ok());
  EXPECT_TRUE(dfs.Write("two", MakeTable("t", 100)).ok());
}

TEST_F(DfsTest, DeletePrefix) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("views/a", MakeTable("t", 1)).ok());
  ASSERT_TRUE(dfs.Write("views/b", MakeTable("t", 1)).ok());
  ASSERT_TRUE(dfs.Write("base/c", MakeTable("t", 1)).ok());
  EXPECT_EQ(dfs.DeletePrefix("views/"), 2u);
  EXPECT_TRUE(dfs.Exists("base/c"));
  EXPECT_EQ(dfs.ListPaths().size(), 1u);
}

TEST_F(DfsTest, PeekDoesNotMeter) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("p", MakeTable("t", 5)).ok());
  ASSERT_TRUE(dfs.Peek("p").ok());
  EXPECT_EQ(dfs.metrics().bytes_read, 0u);
}

}  // namespace
}  // namespace opd::storage
