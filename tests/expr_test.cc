// Property tests for the fused expression evaluator (src/exec/expr/).
//
// The contract under test is *byte identity*: for any project+filter chain
// over any batch contents — every data type, null cells, dictionary-encoded
// strings with duplicate entries, variant (mixed-type) lanes, empty and full
// selections — `ExprProgram::Run` must reproduce exactly the rows that
//   (a) a per-row oracle produces by applying `afk::EvalCmp` and the
//       projection to `RowAt(i)` one row at a time, and
//   (b) the unfused path produces by running each source step as its own
//       single-step program with a gather in between (the shape of the
//       engine's per-operator batch path).
// Cell equality here is stricter than `Value::operator==` (which treats
// 1 == 1.0 == true and is what the engine's hashes are built on): we compare
// the type alternative and, for doubles, the raw bit pattern, so a fused
// path that "helpfully" normalized -0.0 to 0.0 or coerced an int64 to
// double would fail even though every hash in the system would still match.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "afk/predicate.h"
#include "exec/expr/expr_program.h"
#include "storage/row_batch.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace opd {
namespace {

using afk::CmpOp;
using exec::expr::EvalScratch;
using exec::expr::ExprProgram;
using exec::expr::ExprStep;
using storage::Column;
using storage::DataType;
using storage::DictionaryPtr;
using storage::Row;
using storage::RowBatch;
using storage::Schema;
using storage::Value;

// -- bit-level cell comparison ----------------------------------------------

bool CellsBitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kNull:
      return true;
    case DataType::kBool:
      return a.as_bool() == b.as_bool();
    case DataType::kInt64:
      return a.as_int64() == b.as_int64();
    case DataType::kDouble: {
      uint64_t ba = 0, bb = 0;
      double da = a.as_double(), db = b.as_double();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case DataType::kString:
      return a.as_string() == b.as_string();
  }
  return false;
}

std::string RowToString(const Row& row) {
  std::string s = "[";
  for (const Value& v : row) {
    if (s.size() > 1) s += ", ";
    s += v.is_null() ? "null" : v.ToString();
    s += ":";
    s += storage::DataTypeName(v.type());
  }
  return s + "]";
}

void ExpectRowsBitIdentical(const std::vector<Row>& got,
                            const std::vector<Row>& want,
                            const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what << ": row count diverges";
  for (size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r].size(), want[r].size()) << what << " row " << r;
    for (size_t c = 0; c < got[r].size(); ++c) {
      ASSERT_TRUE(CellsBitIdentical(got[r][c], want[r][c]))
          << what << " row " << r << " col " << c << ": got "
          << RowToString(got[r]) << " want " << RowToString(want[r]);
    }
  }
}

// -- oracles ----------------------------------------------------------------

// Applies the source chain one row at a time with the scalar primitives the
// row engine uses: `afk::EvalCmp` verdicts and plain cell copies.
std::vector<Row> RowOracle(const std::vector<Row>& rows,
                           const std::vector<ExprStep>& steps) {
  std::vector<Row> cur = rows;
  for (const ExprStep& s : steps) {
    std::vector<Row> next;
    if (s.kind == ExprStep::Kind::kFilterCompare) {
      for (const Row& row : cur) {
        if (afk::EvalCmp(row[s.col], s.op, s.literal)) next.push_back(row);
      }
    } else {
      for (const Row& row : cur) {
        Row out;
        out.reserve(s.cols.size());
        for (size_t c : s.cols) out.push_back(row[c]);
        next.push_back(std::move(out));
      }
    }
    cur = std::move(next);
  }
  return cur;
}

std::vector<Row> BatchRows(const std::vector<RowBatch>& batches) {
  std::vector<Row> rows;
  for (const RowBatch& b : batches) {
    for (size_t r = 0; r < b.num_rows(); ++r) rows.push_back(b.RowAt(r));
  }
  return rows;
}

// Runs the full chain as ONE fused program over every batch.
std::vector<Row> RunFused(const std::vector<RowBatch>& batches,
                          size_t num_cols, const std::vector<ExprStep>& steps) {
  std::optional<ExprProgram> prog = ExprProgram::Compile(num_cols, steps);
  EXPECT_TRUE(prog.has_value());
  prog->BindDictionaries(batches);
  EvalScratch scratch;
  std::vector<Row> rows;
  for (const RowBatch& b : batches) {
    RowBatch out = prog->Run(b, &scratch);
    for (size_t r = 0; r < out.num_rows(); ++r) rows.push_back(out.RowAt(r));
  }
  return rows;
}

// Runs the chain one step at a time — each step its own program, output
// batches of one step feeding the next (the unfused per-operator shape).
std::vector<Row> RunStepwise(std::vector<RowBatch> batches, size_t num_cols,
                             const std::vector<ExprStep>& steps) {
  EvalScratch scratch;
  for (const ExprStep& s : steps) {
    std::optional<ExprProgram> prog = ExprProgram::Compile(num_cols, {s});
    EXPECT_TRUE(prog.has_value());
    prog->BindDictionaries(batches);
    std::vector<RowBatch> next;
    next.reserve(batches.size());
    for (const RowBatch& b : batches) next.push_back(prog->Run(b, &scratch));
    batches = std::move(next);
    if (s.kind == ExprStep::Kind::kProject) num_cols = s.cols.size();
  }
  return BatchRows(batches);
}

// -- random batch / chain generation ----------------------------------------

struct Rng {
  std::mt19937_64 gen;
  explicit Rng(uint64_t seed) : gen(seed) {}
  size_t Index(size_t n) {  // uniform in [0, n)
    return std::uniform_int_distribution<size_t>(0, n - 1)(gen);
  }
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen) < p;
  }
};

const std::vector<Value>& PoolFor(DataType t) {
  static const std::vector<Value> kBoolPool = {Value(true), Value(false)};
  static const std::vector<Value> kIntPool = {
      Value(int64_t{-3}), Value(int64_t{0}),  Value(int64_t{1}),
      Value(int64_t{2}),  Value(int64_t{42}), Value(int64_t{1000000007})};
  static const std::vector<Value> kDoublePool = {
      Value(0.0),  Value(-0.0), Value(1.0),
      Value(1.5),  Value(-2.25), Value(1e18),
      Value(std::numeric_limits<double>::quiet_NaN())};
  static const std::vector<Value> kStringPool = {
      Value(""), Value("a"), Value("bb"), Value("ccc"), Value("dede")};
  switch (t) {
    case DataType::kBool: return kBoolPool;
    case DataType::kInt64: return kIntPool;
    case DataType::kString: return kStringPool;
    default: return kDoublePool;
  }
}

Value RandomCell(Rng* rng, DataType t, bool allow_nulls, bool variant_lane) {
  if (allow_nulls && rng->Chance(0.15)) return Value::Null();
  // A variant-lane column mixes in cells of a foreign type, demoting the
  // column out of its native array — the fused path must then fall back to
  // the per-row EvalCmp mask and still match byte-for-byte.
  if (variant_lane && rng->Chance(0.25)) {
    DataType other = t == DataType::kInt64 ? DataType::kDouble
                                           : DataType::kInt64;
    const std::vector<Value>& pool = PoolFor(other);
    return pool[rng->Index(pool.size())];
  }
  const std::vector<Value>& pool = PoolFor(t);
  return pool[rng->Index(pool.size())];
}

struct RandomInput {
  Schema schema;
  std::vector<Row> rows;
  std::vector<RowBatch> batches;
};

// Builds a random table: random column types, ~15% nulls in nullable
// columns, dictionary strings drawn from a tiny pool (lots of duplicate
// entries), occasionally a variant lane, split into many small batches that
// share one dictionary per string column (the Table::ToBatches shape).
RandomInput MakeRandomInput(Rng* rng, size_t num_cols, size_t num_rows,
                            size_t batch_rows) {
  static const DataType kTypes[] = {DataType::kBool, DataType::kInt64,
                                    DataType::kDouble, DataType::kString};
  RandomInput in;
  std::vector<DataType> types;
  std::vector<bool> nullable, variant;
  std::vector<Column> cols;
  for (size_t c = 0; c < num_cols; ++c) {
    DataType t = kTypes[rng->Index(4)];
    types.push_back(t);
    nullable.push_back(rng->Chance(0.6));
    variant.push_back((t == DataType::kInt64 || t == DataType::kDouble) &&
                      rng->Chance(0.15));
    cols.push_back({"c" + std::to_string(c), t});
  }
  in.schema = Schema(std::move(cols));

  for (size_t r = 0; r < num_rows; ++r) {
    Row row;
    for (size_t c = 0; c < num_cols; ++c) {
      row.push_back(RandomCell(rng, types[c], nullable[c], variant[c]));
    }
    in.rows.push_back(std::move(row));
  }

  std::vector<DictionaryPtr> shared_dicts(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    if (types[c] == DataType::kString) {
      shared_dicts[c] = std::make_shared<storage::Dictionary>();
    }
  }
  for (size_t begin = 0; begin < num_rows; begin += batch_rows) {
    size_t end = std::min(begin + batch_rows, num_rows);
    in.batches.push_back(
        RowBatch::FromRows(in.schema, in.rows, begin, end, &shared_dicts));
  }
  return in;
}

// A literal for a filter over column `c`: usually same-class (drawn from the
// column's own pool so equality predicates actually hit), sometimes null,
// sometimes cross-class — both of which must route through the EvalCmp
// fallback and still agree with the oracle.
Value RandomLiteral(Rng* rng, DataType col_type) {
  if (rng->Chance(0.1)) return Value::Null();
  if (rng->Chance(0.2)) {
    DataType other = col_type == DataType::kString ? DataType::kInt64
                                                   : DataType::kString;
    const std::vector<Value>& pool = PoolFor(other);
    return pool[rng->Index(pool.size())];
  }
  const std::vector<Value>& pool = PoolFor(col_type);
  return pool[rng->Index(pool.size())];
}

std::vector<ExprStep> RandomChain(Rng* rng, const RandomInput& in,
                                  size_t num_steps) {
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  std::vector<ExprStep> steps;
  // Tracks the current step's input columns in input-space, so literals can
  // be matched to the column's declared type through any projections.
  std::vector<size_t> colmap(in.schema.num_columns());
  for (size_t c = 0; c < colmap.size(); ++c) colmap[c] = c;

  for (size_t s = 0; s < num_steps; ++s) {
    if (colmap.empty()) break;
    if (rng->Chance(0.65)) {
      size_t col = rng->Index(colmap.size());
      DataType t = in.schema.column(colmap[col]).type;
      steps.push_back(ExprStep::FilterCompare(col, kOps[rng->Index(6)],
                                              RandomLiteral(rng, t)));
    } else {
      // Random subset, shuffled, occasionally with a duplicated column.
      std::vector<size_t> keep;
      for (size_t c = 0; c < colmap.size(); ++c) {
        if (rng->Chance(0.7)) keep.push_back(c);
      }
      if (keep.empty()) keep.push_back(rng->Index(colmap.size()));
      std::shuffle(keep.begin(), keep.end(), rng->gen);
      if (rng->Chance(0.2)) keep.push_back(keep[rng->Index(keep.size())]);
      std::vector<size_t> new_colmap;
      for (size_t c : keep) new_colmap.push_back(colmap[c]);
      colmap = std::move(new_colmap);
      steps.push_back(ExprStep::Project(std::move(keep)));
    }
  }
  return steps;
}

// -- the property -----------------------------------------------------------

TEST(ExprProgramPropertyTest, FusedMatchesRowOracleAndStepwiseEvaluation) {
  constexpr int kTrials = 120;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(trial));
    size_t num_cols = 1 + rng.Index(5);
    size_t num_rows = rng.Index(400);           // includes 0-row inputs
    size_t batch_rows = 1 + rng.Index(96);      // many partial batches
    RandomInput in = MakeRandomInput(&rng, num_cols, num_rows, batch_rows);
    std::vector<ExprStep> steps = RandomChain(&rng, in, 1 + rng.Index(4));
    SCOPED_TRACE("trial " + std::to_string(trial) + " schema " +
                 in.schema.ToString() + " rows " + std::to_string(num_rows) +
                 " batch_rows " + std::to_string(batch_rows) + " steps " +
                 std::to_string(steps.size()));

    // Sanity: batches round-trip the source rows exactly (otherwise the
    // oracle below would be vacuous).
    ExpectRowsBitIdentical(BatchRows(in.batches), in.rows, "round-trip");

    std::vector<Row> fused = RunFused(in.batches, num_cols, steps);
    std::vector<Row> oracle = RowOracle(in.rows, steps);
    ExpectRowsBitIdentical(fused, oracle, "fused vs row oracle");

    std::vector<Row> stepwise = RunStepwise(in.batches, num_cols, steps);
    ExpectRowsBitIdentical(stepwise, oracle, "stepwise vs row oracle");
  }
}

// Unbound dictionaries (no BindDictionaries pre-pass) take the on-the-fly
// evaluation path inside Run — same verdicts, just uncached.
TEST(ExprProgramPropertyTest, UnboundDictionariesMatchBoundEvaluation) {
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(0xdeadbeefULL + static_cast<uint64_t>(trial));
    RandomInput in = MakeRandomInput(&rng, 3, 300, 64);
    std::vector<ExprStep> steps = RandomChain(&rng, in, 2);
    std::optional<ExprProgram> prog =
        ExprProgram::Compile(in.schema.num_columns(), steps);
    ASSERT_TRUE(prog.has_value());
    EvalScratch scratch;
    std::vector<Row> unbound;
    for (const RowBatch& b : in.batches) {
      RowBatch out = prog->Run(b, &scratch);
      for (size_t r = 0; r < out.num_rows(); ++r)
        unbound.push_back(out.RowAt(r));
    }
    ExpectRowsBitIdentical(
        unbound, RunFused(in.batches, in.schema.num_columns(), steps),
        "unbound vs bound dictionaries");
  }
}

// -- directed edge cases ----------------------------------------------------

TEST(ExprProgramTest, EmptyAndFullSelections) {
  Rng rng(11);
  RandomInput in = MakeRandomInput(&rng, 3, 200, 50);
  size_t nc = in.schema.num_columns();

  // Nothing passes: int64/double/bool/string all compare < "" as false only
  // for strings; use a predicate that is false for every live cell and for
  // null. kLt against the smallest pool value with kLt(null) == false.
  std::vector<ExprStep> none = {
      ExprStep::FilterCompare(0, CmpOp::kNe, in.rows.empty()
                                                 ? Value(int64_t{0})
                                                 : in.rows[0][0]),
      ExprStep::FilterCompare(0, CmpOp::kEq, in.rows.empty()
                                                 ? Value(int64_t{1})
                                                 : in.rows[0][0])};
  // ne(x) AND eq(x) is unsatisfiable — empty selection on every batch.
  std::vector<Row> got = RunFused(in.batches, nc, none);
  EXPECT_EQ(got.size(), 0u);
  ExpectRowsBitIdentical(got, RowOracle(in.rows, none), "empty selection");

  // Everything passes (null == null here, and x == x for NaN-free col 0 is
  // not guaranteed — use a tautology over the row oracle instead): kNe with
  // a literal no bool/int cell equals.
  std::vector<ExprStep> tautology = {
      ExprStep::FilterCompare(0, CmpOp::kNe, Value(std::string("nope")))};
  std::vector<Row> all = RunFused(in.batches, nc, tautology);
  ExpectRowsBitIdentical(all, RowOracle(in.rows, tautology), "vs oracle");
}

TEST(ExprProgramTest, ProjectOnlyIsZeroCopyColumnSwizzle) {
  Rng rng(13);
  RandomInput in = MakeRandomInput(&rng, 4, 128, 128);
  std::optional<ExprProgram> prog =
      ExprProgram::Compile(4, {ExprStep::Project({2, 0})});
  ASSERT_TRUE(prog.has_value());
  EvalScratch scratch;
  RowBatch out = prog->Run(in.batches[0], &scratch);
  ASSERT_EQ(out.num_columns(), 2u);
  EXPECT_EQ(out.column_ptr(0).get(), in.batches[0].column_ptr(2).get());
  EXPECT_EQ(out.column_ptr(1).get(), in.batches[0].column_ptr(0).get());
}

TEST(ExprProgramTest, FilteredStringColumnsShareTheInputDictionary) {
  Schema schema({{"s", DataType::kString}, {"n", DataType::kInt64}});
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({i % 7 == 0 ? Value::Null()
                               : Value("tag" + std::to_string(i % 5)),
                    Value(int64_t{i})});
  }
  std::vector<DictionaryPtr> dicts = {std::make_shared<storage::Dictionary>(),
                                      nullptr};
  std::vector<RowBatch> batches = {
      RowBatch::FromRows(schema, rows, 0, 50, &dicts),
      RowBatch::FromRows(schema, rows, 50, 100, &dicts)};

  std::vector<ExprStep> steps = {
      ExprStep::FilterCompare(0, CmpOp::kGe, Value(std::string("tag1"))),
      ExprStep::FilterCompare(1, CmpOp::kLt, Value(int64_t{80}))};
  std::optional<ExprProgram> prog = ExprProgram::Compile(2, steps);
  ASSERT_TRUE(prog.has_value());
  prog->BindDictionaries(batches);
  EvalScratch scratch;
  std::vector<Row> fused;
  for (const RowBatch& b : batches) {
    RowBatch out = prog->Run(b, &scratch);
    ASSERT_GT(out.num_rows(), 0u);
    // Dictionary passthrough: the filtered batch's string column shares the
    // table-wide dictionary by pointer — no strings were re-interned.
    EXPECT_EQ(out.column(0).dict().get(), b.column(0).dict().get());
    EXPECT_EQ(out.column(0).dict().get(), dicts[0].get());
    for (size_t r = 0; r < out.num_rows(); ++r) fused.push_back(out.RowAt(r));
  }
  ExpectRowsBitIdentical(fused, RowOracle(rows, steps), "dict passthrough");
}

TEST(ExprProgramTest, AllNullStringColumn) {
  Schema schema({{"s", DataType::kString}});
  std::vector<Row> rows(40, Row{Value::Null()});
  std::vector<DictionaryPtr> dicts = {std::make_shared<storage::Dictionary>()};
  std::vector<RowBatch> batches = {
      RowBatch::FromRows(schema, rows, 0, 40, &dicts)};
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt}) {
    std::vector<ExprStep> steps = {
        ExprStep::FilterCompare(0, op, Value(std::string("x")))};
    ExpectRowsBitIdentical(RunFused(batches, 1, steps), RowOracle(rows, steps),
                           "all-null string column");
  }
}

TEST(ExprProgramTest, CompileRejectsOutOfRangeColumns) {
  EXPECT_FALSE(ExprProgram::Compile(
                   2, {ExprStep::FilterCompare(2, CmpOp::kEq, Value(int64_t{0}))})
                   .has_value());
  EXPECT_FALSE(
      ExprProgram::Compile(3, {ExprStep::Project({1}),
                               ExprStep::FilterCompare(1, CmpOp::kEq,
                                                       Value(int64_t{0}))})
          .has_value());
  // Valid chain: filter column indices compose through the projection.
  EXPECT_TRUE(
      ExprProgram::Compile(3, {ExprStep::Project({2, 1}),
                               ExprStep::FilterCompare(1, CmpOp::kEq,
                                                       Value(int64_t{0}))})
          .has_value());
}

TEST(ExprProgramTest, EmptyBatchAndEmptyChain) {
  Rng rng(17);
  RandomInput in = MakeRandomInput(&rng, 2, 0, 32);
  // Zero batches is legal input to BindDictionaries and trivially correct.
  std::vector<Row> fused = RunFused(in.batches, 2, {ExprStep::FilterCompare(
                                                       0, CmpOp::kEq,
                                                       Value(int64_t{1}))});
  EXPECT_TRUE(fused.empty());
  // An empty chain is the identity program.
  RandomInput in2 = MakeRandomInput(&rng, 2, 64, 16);
  ExpectRowsBitIdentical(RunFused(in2.batches, 2, {}), in2.rows,
                         "identity program");
}

}  // namespace
}  // namespace opd
