// Tests for the Afk annotation: symbolic operation types, equivalence, fix
// computation, and the producibility closure (Sections 3.1, 4.1, 4.3).

#include "afk/afk.h"

#include <gtest/gtest.h>

namespace opd::afk {
namespace {

using storage::DataType;
using storage::Value;

Attribute B(const std::string& name,
            DataType type = DataType::kInt64) {
  return Attribute::Base("T", name, type);
}

Afk BaseAfk() {
  return Afk::ForBaseRelation(
      "T", {B("id"), B("a"), B("b", DataType::kDouble), B("c")}, {"id"});
}

TEST(AfkTest, BaseRelationAnnotation) {
  Afk afk = BaseAfk();
  EXPECT_EQ(afk.attrs().size(), 4u);
  EXPECT_TRUE(afk.filters().empty());
  ASSERT_EQ(afk.keys().keys().size(), 1u);
  EXPECT_EQ(afk.keys().keys()[0].name(), "id");
  EXPECT_EQ(afk.keys().agg_depth(), 0);
}

TEST(AfkTest, FindByName) {
  Afk afk = BaseAfk();
  EXPECT_TRUE(afk.FindByName("a").has_value());
  EXPECT_FALSE(afk.FindByName("zzz").has_value());
}

TEST(AfkTest, ProjectKeepsSubsetAndPreservesGrouping) {
  Afk afk = BaseAfk();
  auto projected = afk.Project({*afk.FindByName("a"), *afk.FindByName("b")});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->attrs().size(), 2u);
  // Dropping the key column does not regroup the data: K is preserved, so a
  // UDF applied to any projection of the same log sees the same context.
  EXPECT_EQ(projected->keys(), afk.keys());
}

TEST(AfkTest, ProjectAbsentAttributeFails) {
  Afk afk = BaseAfk();
  Attribute foreign = Attribute::Base("OTHER", "x", DataType::kInt64);
  EXPECT_FALSE(afk.Project({foreign}).ok());
}

TEST(AfkTest, ApplyFilterAddsToF) {
  Afk afk = BaseAfk();
  Predicate p = Predicate::Compare(*afk.FindByName("b"), CmpOp::kGt,
                                   Value(0.5));
  auto filtered = afk.ApplyFilter(p);
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(filtered->filters().Contains(p));
  EXPECT_EQ(filtered->attrs().size(), afk.attrs().size());
}

TEST(AfkTest, FilterOnAbsentAttributeFails) {
  Afk afk = BaseAfk();
  Predicate p = Predicate::Compare(Attribute::Base("X", "q", DataType::kInt64),
                                   CmpOp::kGt, Value(1.0));
  EXPECT_FALSE(afk.ApplyFilter(p).ok());
}

TEST(AfkTest, GroupByDropsNonKeyAttrsAndIncrementsDepth) {
  Afk afk = BaseAfk();
  Attribute key = *afk.FindByName("c");
  Attribute agg = Attribute::Derived("cnt", "agg:COUNT", {}, "ctx", "",
                                     DataType::kInt64);
  auto grouped = afk.GroupBy({key}, {agg});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->attrs().size(), 2u);  // key + aggregate only
  EXPECT_FALSE(grouped->HasAttr(*afk.FindByName("a")));
  EXPECT_EQ(grouped->keys().agg_depth(), 1);
  ASSERT_EQ(grouped->keys().keys().size(), 1u);
  EXPECT_EQ(grouped->keys().keys()[0], key);
}

TEST(AfkTest, GroupByIsTheFalsePositiveExample) {
  // The paper's Figure 5 discussion: grouping on c removes a and b, which
  // may render the creation of d impossible afterwards.
  Afk afk = BaseAfk();
  Attribute key = *afk.FindByName("c");
  Attribute agg = Attribute::Derived("cnt", "agg:COUNT", {}, "ctx", "",
                                     DataType::kInt64);
  Afk grouped = afk.GroupBy({key}, {agg}).value();
  // d = f(a, b) can no longer be added: a and b are gone.
  Attribute d = Attribute::Derived(
      "d", "f", {*afk.FindByName("a"), *afk.FindByName("b")}, "ctx", "",
      DataType::kDouble);
  EXPECT_FALSE(grouped.AddAttributes({d}).ok());
}

TEST(AfkTest, AddAttributesRequiresInputs) {
  Afk afk = BaseAfk();
  Attribute d = Attribute::Derived(
      "d", "f", {*afk.FindByName("a"), *afk.FindByName("b")}, "ctx", "",
      DataType::kDouble);
  auto extended = afk.AddAttributes({d});
  ASSERT_TRUE(extended.ok());
  EXPECT_TRUE(extended->HasAttr(d));
  EXPECT_EQ(extended->keys(), afk.keys());
}

TEST(AfkTest, JoinUnionsAttrsAndIntersectsKeys) {
  // Two relations sharing `u`, keyed on u at depth 1 each (e.g. two
  // per-user aggregates).
  Attribute u = Attribute::Base("T", "u", DataType::kInt64);
  Attribute x = Attribute::Base("T", "x", DataType::kDouble);
  Attribute y = Attribute::Base("T", "y", DataType::kDouble);
  Afk left({u, x}, FilterSet(), KeySet({u}, 1));
  Afk right({u, y}, FilterSet(), KeySet({u}, 1));
  auto joined = left.Join(right, {{u, u}});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->attrs().size(), 3u);  // u, x, y (u deduplicated)
  ASSERT_EQ(joined->keys().keys().size(), 1u);
  EXPECT_EQ(joined->keys().keys()[0], u);
  EXPECT_EQ(joined->keys().agg_depth(), 1);
}

TEST(AfkTest, JoinCoalescesDifferentlyNamedKeys) {
  // TWTR.user_id = FSQ.user_id: different signatures, same semantic entity.
  Attribute tu = Attribute::Base("TWTR", "user_id", DataType::kInt64);
  Attribute fu = Attribute::Base("FSQ", "user_id", DataType::kInt64);
  Attribute s = Attribute::Base("TWTR", "s", DataType::kDouble);
  Attribute c = Attribute::Base("FSQ", "c", DataType::kInt64);
  Afk left({tu, s}, FilterSet(), KeySet({tu}, 1));
  Afk right({fu, c}, FilterSet(), KeySet({fu}, 1));
  auto joined = left.Join(right, {{tu, fu}});
  ASSERT_TRUE(joined.ok());
  // The right-side join column is coalesced into the left one.
  EXPECT_TRUE(joined->HasAttr(tu));
  EXPECT_FALSE(joined->HasAttr(fu));
  EXPECT_EQ(joined->attrs().size(), 3u);  // tu, s, c
  // Both keys map to the surviving left attribute.
  ASSERT_GE(joined->keys().keys().size(), 1u);
  EXPECT_EQ(joined->keys().keys()[0], tu);
  // The join condition is recorded as a filter.
  EXPECT_EQ(joined->filters().size(), 1u);
}

TEST(AfkTest, JoinRequiresPairs) {
  Afk afk = BaseAfk();
  EXPECT_FALSE(afk.Join(afk, {}).ok());
}

TEST(AfkTest, EquivalenceExact) {
  Afk a = BaseAfk();
  Afk b = BaseAfk();
  EXPECT_TRUE(a == b);
}

TEST(AfkTest, EquivalenceModuloRedundantFilters) {
  Afk base = BaseAfk();
  Attribute b_attr = *base.FindByName("b");
  Afk tight =
      base.ApplyFilter(Predicate::Compare(b_attr, CmpOp::kLt, Value(5.0)))
          .value();
  Afk redundant =
      base.ApplyFilter(Predicate::Compare(b_attr, CmpOp::kLt, Value(10.0)))
          .value()
          .ApplyFilter(Predicate::Compare(b_attr, CmpOp::kLt, Value(5.0)))
          .value();
  EXPECT_TRUE(tight == redundant);
}

TEST(AfkTest, InequivalenceOnKeys) {
  Afk base = BaseAfk();
  Attribute c = *base.FindByName("c");
  Attribute agg = Attribute::Derived("cnt", "agg:COUNT", {}, "x", "",
                                     DataType::kInt64);
  Afk g1 = base.GroupBy({c}, {agg}).value();
  EXPECT_FALSE(base == g1);
}

TEST(FixTest, EmptyFixForIdentical) {
  Afk a = BaseAfk();
  Fix fix = ComputeFix(a, a);
  EXPECT_TRUE(fix.empty());
  EXPECT_EQ(fix.NumOpTypes(), 0);
}

TEST(FixTest, Figure5Example) {
  // View v: attrs {a,b,c}, no filters, no keys.
  // Query q: attrs {b,c,d} with d = f(a,b), filter d < 10, keyed on c.
  Attribute a = B("a"), b = B("b"), c = B("c");
  Afk v({a, b, c}, FilterSet(), KeySet({}, 0));
  Attribute d = Attribute::Derived("d", "f", {a, b}, "ctx", "",
                                   DataType::kDouble);
  FilterSet fq;
  fq.Add(Predicate::Compare(d, CmpOp::kLt, Value(10.0)));
  Afk q({b, c, d}, fq, KeySet({c}, 1));

  Fix fix = ComputeFix(q, v);
  ASSERT_EQ(fix.missing_attrs.size(), 1u);
  EXPECT_EQ(fix.missing_attrs[0], d);
  ASSERT_EQ(fix.missing_filters.size(), 1u);
  EXPECT_TRUE(fix.rekey_needed);
  ASSERT_EQ(fix.extra_attrs.size(), 1u);
  EXPECT_EQ(fix.extra_attrs[0], a);
  EXPECT_EQ(fix.NumOpTypes(), 3);
}

TEST(FixTest, WeakerViewFilterEntersFix) {
  Afk base = BaseAfk();
  Attribute b_attr = *base.FindByName("b");
  Afk v = base.ApplyFilter(
                  Predicate::Compare(b_attr, CmpOp::kGt, Value(0.5)))
              .value();
  Afk q = base.ApplyFilter(
                  Predicate::Compare(b_attr, CmpOp::kGt, Value(1.0)))
              .value();
  Fix fix = ComputeFix(q, v);
  ASSERT_EQ(fix.missing_filters.size(), 1u);
  EXPECT_TRUE(fix.missing_attrs.empty());
}

TEST(ClosureTest, DirectAttributes) {
  Afk a = BaseAfk();
  auto closure = ProducibleClosure(a, a);
  EXPECT_EQ(closure.size(), a.attrs().size());
}

TEST(ClosureTest, TransitiveDerivation) {
  // v has geo; q needs tile_id = g(lat), lat = f(geo): both producible.
  Attribute geo = B("geo", DataType::kString);
  Afk v({geo}, FilterSet(), KeySet({}, 0));
  Attribute lat = Attribute::Derived("lat", "f", {geo}, "c", "",
                                     DataType::kDouble);
  Attribute tile = Attribute::Derived("tile", "g", {lat}, "c", "",
                                      DataType::kInt64);
  Afk q({tile}, FilterSet(), KeySet({}, 0));
  auto closure = ProducibleClosure(q, v);
  EXPECT_EQ(closure.size(), 3u);  // geo, lat, tile
}

TEST(ClosureTest, BaseAttributesCannotBeSynthesized) {
  Attribute a = B("a");
  Afk v({a}, FilterSet(), KeySet({}, 0));
  Attribute other = B("other");
  Afk q({other}, FilterSet(), KeySet({}, 0));
  auto closure = ProducibleClosure(q, v);
  EXPECT_EQ(closure.size(), 1u);  // just a
}

TEST(ContextStringTest, ReflectsFiltersAndKeys) {
  Afk base = BaseAfk();
  Attribute b_attr = *base.FindByName("b");
  Afk filtered =
      base.ApplyFilter(Predicate::Compare(b_attr, CmpOp::kGt, Value(1.0)))
          .value();
  EXPECT_NE(base.ContextString(), filtered.ContextString());
}

}  // namespace
}  // namespace opd::afk
