// Tests for the catalog and the materialized-view metadata store.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "storage/dfs.h"

namespace opd::catalog {
namespace {

using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

storage::TablePtr MakeTable(const std::string& name, int rows) {
  auto t = std::make_shared<Table>(
      name, Schema({Column{"id", DataType::kInt64},
                    Column{"grp", DataType::kInt64},
                    Column{"txt", DataType::kString}}));
  for (int i = 0; i < rows; ++i) {
    (void)const_cast<Table&>(*t).AppendRow(
        {Value(int64_t{i}), Value(int64_t{i % 4}), Value("abc")});
  }
  return t;
}

TEST(CatalogTest, RegisterAndFind) {
  storage::Dfs dfs;
  Catalog cat;
  ASSERT_TRUE(cat.RegisterBase(MakeTable("T", 100), {"id"}, &dfs).ok());
  auto entry = cat.Find("T");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->name, "T");
  EXPECT_EQ((*entry)->schema.num_columns(), 3u);
  EXPECT_EQ((*entry)->attrs.size(), 3u);
  EXPECT_EQ((*entry)->afk.keys().keys().size(), 1u);
  EXPECT_DOUBLE_EQ((*entry)->stats.rows, 100.0);
  EXPECT_DOUBLE_EQ((*entry)->stats.DistinctOr("grp", 0), 4.0);
  EXPECT_TRUE(dfs.Exists("base/T"));
}

TEST(CatalogTest, RejectsDuplicatesAndBadKeys) {
  storage::Dfs dfs;
  Catalog cat;
  ASSERT_TRUE(cat.RegisterBase(MakeTable("T", 10), {"id"}, &dfs).ok());
  EXPECT_EQ(cat.RegisterBase(MakeTable("T", 10), {"id"}, &dfs).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(cat.RegisterBase(MakeTable("U", 10), {"nope"}, &dfs).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(cat.Find("missing").ok());
}

TEST(CatalogTest, ExactStatsWidths) {
  auto t = MakeTable("T", 50);
  TableStats stats = ComputeExactStats(*t);
  EXPECT_DOUBLE_EQ(stats.rows, 50.0);
  EXPECT_DOUBLE_EQ(stats.ColBytesOr("id", 0), 8.0);
  EXPECT_DOUBLE_EQ(stats.ColBytesOr("txt", 0), 7.0);  // 3 chars + 4 prefix
  EXPECT_DOUBLE_EQ(stats.DistinctOr("id", 0), 50.0);
}

ViewDefinition MakeView(const std::string& rel, const std::string& attr) {
  ViewDefinition def;
  def.dfs_path = "views/" + rel + "/" + attr;
  afk::Attribute a = afk::Attribute::Base(rel, attr, DataType::kInt64);
  def.afk = afk::Afk({a}, afk::FilterSet(), afk::KeySet({a}, 0));
  def.out_attrs = {a};
  def.schema = Schema({Column{attr, DataType::kInt64}});
  def.fingerprint = "fp:" + rel + "." + attr;
  def.bytes = 100;
  return def;
}

TEST(ViewStoreTest, AddFindDrop) {
  ViewStore store;
  ViewId id = store.Add(MakeView("R", "a"));
  EXPECT_GE(id, 0);
  EXPECT_TRUE(store.Has(id));
  auto def = store.Find(id);
  ASSERT_TRUE(def.ok());
  EXPECT_EQ((*def)->id, id);
  EXPECT_TRUE(store.Drop(id).ok());
  EXPECT_FALSE(store.Has(id));
  EXPECT_FALSE(store.Drop(id).ok());
}

TEST(ViewStoreTest, DeduplicatesByAfk) {
  ViewStore store;
  ViewId a = store.Add(MakeView("R", "a"));
  ViewId b = store.Add(MakeView("R", "a"));  // identical AFK
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.size(), 1u);
  ViewId c = store.Add(MakeView("R", "b"));
  EXPECT_NE(a, c);
  EXPECT_EQ(store.size(), 2u);
}

TEST(ViewStoreTest, DropReenablesAdd) {
  ViewStore store;
  ViewId a = store.Add(MakeView("R", "a"));
  ASSERT_TRUE(store.Drop(a).ok());
  ViewId b = store.Add(MakeView("R", "a"));
  EXPECT_NE(a, b);  // new id
  EXPECT_EQ(store.size(), 1u);
}

TEST(ViewStoreTest, DropIdentical) {
  ViewStore store;
  store.Add(MakeView("R", "a"));
  store.Add(MakeView("R", "b"));
  ViewDefinition probe = MakeView("R", "a");
  EXPECT_EQ(store.DropIdentical(probe.afk), 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.DropIdentical(probe.afk), 0u);
}

TEST(ViewStoreTest, TotalBytesAndAll) {
  ViewStore store;
  store.Add(MakeView("R", "a"));
  store.Add(MakeView("R", "b"));
  EXPECT_EQ(store.TotalBytes(), 200u);
  EXPECT_EQ(store.All().size(), 2u);
  store.DropAll();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.TotalBytes(), 0u);
}

}  // namespace
}  // namespace opd::catalog
