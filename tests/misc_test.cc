// Small-surface tests: KeySet, ExecMetrics, display names, and other
// odds and ends not covered by the module suites.

#include <gtest/gtest.h>

#include "afk/afk.h"
#include "exec/metrics.h"
#include "plan/plan.h"

namespace opd {
namespace {

using afk::Attribute;
using afk::KeySet;
using storage::DataType;

TEST(KeySetTest, SortsAndDeduplicates) {
  Attribute a = Attribute::Base("T", "a", DataType::kInt64);
  Attribute b = Attribute::Base("T", "b", DataType::kInt64);
  KeySet k({b, a, b}, 1);
  ASSERT_EQ(k.keys().size(), 2u);
  EXPECT_TRUE(k.keys()[0] < k.keys()[1]);
  EXPECT_TRUE(k.HasKey(a));
  EXPECT_TRUE(k.HasKey(b));
  EXPECT_FALSE(k.HasKey(Attribute::Base("T", "c", DataType::kInt64)));
}

TEST(KeySetTest, EqualityIncludesDepth) {
  Attribute a = Attribute::Base("T", "a", DataType::kInt64);
  EXPECT_TRUE(KeySet({a}, 1) == KeySet({a}, 1));
  EXPECT_FALSE(KeySet({a}, 1) == KeySet({a}, 2));
  EXPECT_FALSE(KeySet({a}, 1) == KeySet({}, 1));
}

TEST(KeySetTest, ToStringMentionsDepth) {
  Attribute a = Attribute::Base("T", "a", DataType::kInt64);
  std::string s = KeySet({a}, 3).ToString();
  EXPECT_NE(s.find("@3"), std::string::npos);
}

TEST(ExecMetricsTest, AccumulateAndDerived) {
  exec::ExecMetrics a;
  a.sim_time_s = 10;
  a.stats_time_s = 1;
  a.bytes_read = 100;
  a.bytes_shuffled = 50;
  a.bytes_written = 25;
  a.jobs = 2;
  exec::ExecMetrics b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.sim_time_s, 20.0);
  EXPECT_EQ(b.bytes_read, 200u);
  EXPECT_EQ(b.jobs, 4);
  EXPECT_EQ(a.BytesManipulated(), 175u);
  EXPECT_DOUBLE_EQ(a.TotalTime(), 11.0);
  EXPECT_NE(a.ToString().find("jobs=2"), std::string::npos);
}

TEST(OpNodeTest, DisplayNames) {
  EXPECT_EQ(plan::Scan("TWTR")->DisplayName(), "SCAN(TWTR)");
  EXPECT_EQ(plan::ScanView(7)->DisplayName(), "SCAN(view:7)");
  auto filter = plan::Filter(
      plan::Scan("T"), plan::FilterCond::Compare("x", afk::CmpOp::kGt,
                                                 storage::Value(1.0)));
  EXPECT_NE(filter->DisplayName().find("FILTER"), std::string::npos);
  auto udf = plan::Udf(plan::Scan("T"), "UDF_X");
  EXPECT_EQ(udf->DisplayName(), "UDF(UDF_X)");
  auto group = plan::GroupBy(plan::Scan("T"), {"k1", "k2"},
                             {plan::AggSpec{plan::AggFn::kCount, "", "n"}});
  EXPECT_EQ(group->DisplayName(), "GROUPBY(k1,k2)");
}

TEST(OpNodeTest, AggFnNamesDistinct) {
  EXPECT_STREQ(plan::AggFnName(plan::AggFn::kCount), "COUNT");
  EXPECT_STREQ(plan::AggFnName(plan::AggFn::kSum), "SUM");
  EXPECT_STREQ(plan::AggFnName(plan::AggFn::kAvg), "AVG");
  EXPECT_STREQ(plan::AggFnName(plan::AggFn::kMin), "MIN");
  EXPECT_STREQ(plan::AggFnName(plan::AggFn::kMax), "MAX");
}

TEST(PlanTest2, EmptyPlanRenders) {
  plan::Plan empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.ToString(), "<empty>");
  EXPECT_TRUE(empty.TopoOrder().empty());
}

TEST(CmpOpTest, Names) {
  EXPECT_STREQ(afk::CmpOpName(afk::CmpOp::kLt), "<");
  EXPECT_STREQ(afk::CmpOpName(afk::CmpOp::kLe), "<=");
  EXPECT_STREQ(afk::CmpOpName(afk::CmpOp::kGt), ">");
  EXPECT_STREQ(afk::CmpOpName(afk::CmpOp::kGe), ">=");
  EXPECT_STREQ(afk::CmpOpName(afk::CmpOp::kEq), "=");
  EXPECT_STREQ(afk::CmpOpName(afk::CmpOp::kNe), "!=");
}

}  // namespace
}  // namespace opd
