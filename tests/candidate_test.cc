// Tests for candidate-view machinery: useful signatures, coverage masks,
// candidate ids, scan-plan construction, and JobDag target costs.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/engine.h"
#include "plan/job.h"
#include "rewrite/candidate.h"
#include "storage/dfs.h"
#include "udf/builtin_udfs.h"

namespace opd::rewrite {
namespace {

using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

class CandidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs_).ok());
    Schema schema({Column{"tweet_id", DataType::kInt64},
                   Column{"user_id", DataType::kInt64},
                   Column{"tweet_text", DataType::kString}});
    auto t = std::make_shared<Table>("TWTR", schema);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(t->AppendRow({Value(int64_t{i}), Value(int64_t{i % 5}),
                                Value("wine tasty")})
                      .ok());
    }
    ASSERT_TRUE(catalog_.RegisterBase(t, {"tweet_id"}, &dfs_).ok());
    plan::AnnotationContext ctx{&catalog_, &views_, &udfs_};
    optimizer_ = std::make_unique<optimizer::Optimizer>(
        ctx, optimizer::CostModel());
    engine_ = std::make_unique<exec::Engine>(&dfs_, &views_,
                                             optimizer_.get());
  }

  plan::Plan WineJoinQuery() {
    auto extract =
        plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"});
    auto wine = plan::Udf(extract, "UDF_CLASSIFY_WINE_SCORE",
                          {{"threshold", Value(0.2)}});
    auto counts =
        plan::GroupBy(extract, {"user_id"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "cnt"}});
    return plan::Plan(plan::Join(wine, counts, {{"user_id", "user_id"}}),
                      "wq");
  }

  storage::Dfs dfs_;
  catalog::Catalog catalog_;
  catalog::ViewStore views_;
  udf::UdfRegistry udfs_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<exec::Engine> engine_;
};

TEST_F(CandidateTest, IdIsSortedAndStable) {
  CandidateView c;
  c.parts = {7, 3, 12};
  EXPECT_EQ(c.Id(), "3+7+12");
  EXPECT_EQ(c.NumParts(), 3u);
}

TEST_F(CandidateTest, UsefulSignaturesIncludeDepsKeysAndFilterArgs) {
  plan::Plan q = WineJoinQuery();
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  auto useful = UsefulSignatures(q.root()->afk);
  auto has = [&](const std::string& fragment) {
    for (const auto& sig : useful) {
      if (sig.find(fragment) != std::string::npos) return true;
    }
    return false;
  };
  // Output attributes.
  EXPECT_TRUE(has("wine_score"));
  EXPECT_TRUE(has("cnt"));
  // Transitive dependencies of derived attributes.
  EXPECT_TRUE(has("tweet_text"));
  // Keys.
  EXPECT_TRUE(has("user_id"));
}

TEST_F(CandidateTest, CoverageMasksAndUnion) {
  plan::Plan q = WineJoinQuery();
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  auto useful = UsefulSignatures(q.root()->afk);
  Coverage full = ComputeCoverage(q.root()->afk, useful);
  Coverage none = ComputeCoverage(
      afk::Afk({afk::Attribute::Base("X", "z", DataType::kInt64)},
               afk::FilterSet(), afk::KeySet({}, 0)),
      useful);
  // The sink covers at least its own output attrs; the foreign one nothing.
  uint64_t full_bits = 0, none_bits = 0;
  for (uint64_t w : full) full_bits += __builtin_popcountll(w);
  for (uint64_t w : none) none_bits += __builtin_popcountll(w);
  EXPECT_GT(full_bits, 0u);
  EXPECT_EQ(none_bits, 0u);
  EXPECT_TRUE(CoverageEqual(CoverageUnion(full, none), full));
  EXPECT_FALSE(CoverageEqual(full, none));
}

TEST_F(CandidateTest, IsRelevantFiltersForeignViews) {
  plan::Plan q = WineJoinQuery();
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  auto useful = UsefulSignatures(q.root()->afk);
  EXPECT_TRUE(IsRelevant(q.root()->afk, useful));
  afk::Afk foreign({afk::Attribute::Base("OTHER", "a", DataType::kInt64)},
                   afk::FilterSet(), afk::KeySet({}, 0));
  EXPECT_FALSE(IsRelevant(foreign, useful));
}

TEST_F(CandidateTest, BuildCandidateScanSingleView) {
  plan::Plan q = WineJoinQuery();
  auto run = engine_->Execute(&q);
  ASSERT_TRUE(run.ok());
  ASSERT_GT(views_.size(), 0u);
  const auto* def = views_.All()[0];
  auto scan = BuildCandidateScan(MakeBaseCandidate(*def), views_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)->kind, plan::OpKind::kScan);
  EXPECT_EQ((*scan)->view_id, def->id);
}

TEST_F(CandidateTest, BuildCandidateScanRejectsUnjoinableParts) {
  plan::Plan q = WineJoinQuery();
  ASSERT_TRUE(engine_->Execute(&q).ok());
  // Find two views that share no attributes; force them into one candidate.
  const catalog::ViewDefinition* a = nullptr;
  const catalog::ViewDefinition* b = nullptr;
  for (const auto* x : views_.All()) {
    for (const auto* y : views_.All()) {
      if (x == y) continue;
      bool share = false;
      for (const auto& attr : x->afk.attrs()) {
        if (y->afk.HasAttr(attr)) share = true;
      }
      if (!share) {
        a = x;
        b = y;
      }
    }
  }
  if (a == nullptr) GTEST_SKIP() << "all views share attributes";
  CandidateView c;
  c.parts = {a->id, b->id};
  EXPECT_FALSE(BuildCandidateScan(c, views_).ok());
}

TEST_F(CandidateTest, MissingViewIdFails) {
  CandidateView c;
  c.parts = {424242};
  EXPECT_FALSE(BuildCandidateScan(c, views_).ok());
}

TEST_F(CandidateTest, JobDagTargetCostIsPrefixSum) {
  plan::Plan q = WineJoinQuery();
  ASSERT_TRUE(optimizer_->Prepare(&q).ok());
  auto dag = plan::JobDag::Build(q);
  ASSERT_TRUE(dag.ok());
  // The sink's target cost is the whole plan; each producer's is less.
  double sink_cost = dag->TargetCost(dag->sink());
  double sum_all = 0;
  for (size_t i = 0; i < dag->size(); ++i) {
    sum_all += dag->job(i).op->cost.total_s;
    EXPECT_LE(dag->TargetCost(i), sink_cost + 1e-9);
    EXPECT_GT(dag->TargetCost(i), 0.0);
  }
  EXPECT_NEAR(sink_cost, sum_all, 1e-9);
}

}  // namespace
}  // namespace opd::rewrite
