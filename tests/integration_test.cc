// End-to-end integration tests over the full system: TestBed setup,
// scenario drivers, and — most importantly — result equivalence between
// original and rewritten query executions across the whole workload.

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/scenarios.h"

namespace opd::workload {
namespace {

TestBedConfig SmallConfig() {
  TestBedConfig config;
  config.data.n_tweets = 2500;
  config.data.n_checkins = 1500;
  config.data.n_locations = 250;
  config.data.n_users = 120;
  return config;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = TestBed::Create(SmallConfig());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    bed_ = std::move(result).value().release();
  }
  static void TearDownTestSuite() {
    delete bed_;
    bed_ = nullptr;
  }
  void SetUp() override { bed_->DropAllViews(); }

  static std::vector<storage::Row> SortedRows(const storage::TablePtr& t) {
    std::vector<storage::Row> rows = t->rows();
    std::sort(rows.begin(), rows.end(),
              [](const storage::Row& a, const storage::Row& b) {
                for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                  if (a[i] < b[i]) return true;
                  if (b[i] < a[i]) return false;
                }
                return a.size() < b.size();
              });
    return rows;
  }

  static TestBed* bed_;
};

TestBed* IntegrationTest::bed_ = nullptr;

TEST_F(IntegrationTest, TestBedWiring) {
  EXPECT_TRUE(bed_->catalog().Has("TWTR"));
  EXPECT_TRUE(bed_->catalog().Has("FSQ"));
  EXPECT_TRUE(bed_->catalog().Has("LAND"));
  EXPECT_GE(bed_->udfs().size(), 10u);
  // data_scale derived so TWTR models 800 GB.
  const auto& params = bed_->optimizer().cost_model().params();
  EXPECT_GT(params.data_scale, 1.0);
}

TEST_F(IntegrationTest, CalibrationSetScalars) {
  auto wine = bed_->udfs().Find("UDF_CLASSIFY_WINE_SCORE");
  ASSERT_TRUE(wine.ok());
  EXPECT_TRUE((*wine)->calibrated_expansion.has_value());
  EXPECT_GE((*wine)->map_scalar, 1.0);
}

TEST_F(IntegrationTest, OriginalRunRetainsViews) {
  auto result = bed_->RunOriginal(1, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->metrics.jobs, 3);
  EXPECT_EQ(result->metrics.views_created,
            static_cast<int>(bed_->views().size()));
  EXPECT_GT(bed_->views().size(), 3u);
}

TEST_F(IntegrationTest, RewrittenRunImprovesSecondVersion) {
  ASSERT_TRUE(bed_->RunOriginal(2, 1).ok());
  auto rewr = bed_->RunRewritten(2, 2);
  ASSERT_TRUE(rewr.ok()) << rewr.status().ToString();
  EXPECT_TRUE(rewr->outcome.improved);
  auto orig = bed_->RunOriginal(2, 2);
  ASSERT_TRUE(orig.ok());
  EXPECT_LT(rewr->TotalTime(), orig->metrics.sim_time_s);
}

// The fundamental correctness property: for every query version, the
// BFR-rewritten plan computes exactly the same result as the original.
class RewriteEquivalence : public IntegrationTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(RewriteEquivalence, OriginalAndRewrittenResultsMatch) {
  const int analyst = GetParam();
  // Build up views from v1..v3 executions, then check v2..v4 equivalence.
  for (int version = 1; version <= kNumVersions; ++version) {
    auto rewr = bed_->RunRewritten(analyst, version);
    ASSERT_TRUE(rewr.ok()) << "A" << analyst << "v" << version << ": "
                           << rewr.status().ToString();
    auto orig = bed_->RunOriginal(analyst, version);
    ASSERT_TRUE(orig.ok());
    auto orig_rows = SortedRows(orig->table);
    auto rewr_rows = SortedRows(rewr->exec.table);
    ASSERT_EQ(orig_rows.size(), rewr_rows.size())
        << "A" << analyst << "v" << version << " row count mismatch";
    EXPECT_EQ(orig_rows, rewr_rows)
        << "A" << analyst << "v" << version << " content mismatch";
  }
}

INSTANTIATE_TEST_SUITE_P(AllAnalysts, RewriteEquivalence,
                         ::testing::Range(1, kNumAnalysts + 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "A" + std::to_string(info.param);
                         });

TEST_F(IntegrationTest, DpAndBfrAgreeOnWorkloadQueries) {
  ASSERT_TRUE(bed_->RunOriginal(1, 1).ok());
  ASSERT_TRUE(bed_->RunOriginal(4, 1).ok());
  for (int version = 2; version <= 3; ++version) {
    auto qb = BuildQuery(1, version);
    ASSERT_TRUE(qb.ok());
    plan::Plan pb = std::move(qb).value();
    auto bfr = bed_->bfr().Rewrite(&pb);
    ASSERT_TRUE(bfr.ok());
    auto qd = BuildQuery(1, version);
    plan::Plan pd = std::move(qd).value();
    auto dp = bed_->dp().Rewrite(&pd);
    ASSERT_TRUE(dp.ok());
    EXPECT_NEAR(bfr->est_cost, dp->est_cost, 1e-6 * (1 + dp->est_cost))
        << "version " << version;
    EXPECT_LE(bfr->stats.candidates_considered,
              dp->stats.candidates_considered);
  }
}

TEST_F(IntegrationTest, ViewStorageStaysBounded) {
  // Paper Section 10: accumulating all views cost about 2x the base data.
  for (int analyst = 1; analyst <= 4; ++analyst) {
    ASSERT_TRUE(bed_->RunOriginal(analyst, 1).ok());
  }
  uint64_t base_bytes = 0;
  for (const auto& name : bed_->catalog().Names()) {
    auto entry = bed_->catalog().Find(name);
    base_bytes += static_cast<uint64_t>((*entry)->stats.TotalBytes());
  }
  EXPECT_LT(bed_->views().TotalBytes(), 4 * base_bytes);
}

TEST_F(IntegrationTest, DropIdenticalViewsRemovesTargets) {
  ASSERT_TRUE(bed_->RunOriginal(1, 1).ok());
  size_t before = bed_->views().size();
  ASSERT_TRUE(DropIdenticalViews(bed_, 1, 1).ok());
  EXPECT_LT(bed_->views().size(), before);
  // After dropping, the syntactic rewriter finds nothing.
  auto q = BuildQuery(1, 1);
  plan::Plan p = std::move(q).value();
  auto outcome = bed_->syntactic().Rewrite(&p);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->improved);
}

TEST_F(IntegrationTest, RegisterPlanViewsWithoutExecution) {
  auto q = BuildQuery(3, 1);
  plan::Plan p = std::move(q).value();
  ASSERT_TRUE(bed_->RegisterPlanViews(&p).ok());
  EXPECT_GT(bed_->views().size(), 2u);
  // The registered views carry estimated statistics usable by the rewriter.
  for (const auto* def : bed_->views().All()) {
    EXPECT_GE(def->stats.rows, 0.0);
  }
  // And a rewrite of the same query now finds an exact match.
  auto q2 = BuildQuery(3, 1);
  plan::Plan p2 = std::move(q2).value();
  auto outcome = bed_->bfr().Rewrite(&p2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->improved);
}

TEST_F(IntegrationTest, SessionRunsOqlEndToEnd) {
  auto run = bed_->session().Run(
      "counts = scan TWTR | groupby user_id count(*) as n;");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_NE(run->table, nullptr);
  EXPECT_GT(run->table->num_rows(), 0u);
  EXPECT_TRUE(run->rewritten);
  // One JobRun per executed job, matching the metrics totals.
  EXPECT_EQ(static_cast<int>(run->jobs.size()), run->metrics.jobs);
  uint64_t bytes_read = 0;
  for (const auto& job : run->jobs) bytes_read += job.bytes_read;
  EXPECT_EQ(bytes_read, run->metrics.bytes_read);
  // EXPLAIN ANALYZE renders one [job] line per job.
  const std::string analyzed = run->ExplainAnalyze();
  size_t job_lines = 0, pos = 0;
  while ((pos = analyzed.find("[job ", pos)) != std::string::npos) {
    ++job_lines;
    pos += 5;
  }
  EXPECT_EQ(job_lines, run->jobs.size());
}

TEST_F(IntegrationTest, StatsCollectionTimeIsSmallFraction) {
  auto result = bed_->RunOriginal(1, 1);
  ASSERT_TRUE(result.ok());
  // "This constitutes a small overhead... a small fraction of query
  // execution time" (Section 2.1).
  EXPECT_LT(result->metrics.stats_time_s,
            0.25 * result->metrics.sim_time_s);
}

}  // namespace
}  // namespace opd::workload
