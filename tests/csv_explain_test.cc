// Tests for CSV import/export and the plan explainer.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "storage/csv.h"
#include "storage/dfs.h"
#include "udf/builtin_udfs.h"

namespace opd::storage {
namespace {

Schema TestSchema() {
  return Schema({Column{"id", DataType::kInt64},
                 Column{"name", DataType::kString},
                 Column{"score", DataType::kDouble},
                 Column{"flag", DataType::kBool}});
}

Table TestTable() {
  Table t("t", TestSchema());
  (void)t.AppendRow({Value(int64_t{1}), Value("alice"), Value(1.5),
                     Value(true)});
  (void)t.AppendRow({Value(int64_t{2}), Value("bob,jr"), Value(-2.0),
                     Value(false)});
  (void)t.AppendRow(
      {Value(int64_t{3}), Value("quote\"inside"), Value(0.0), Value(true)});
  return t;
}

TEST(CsvTest, RoundTrip) {
  Table original = TestTable();
  std::string csv = ToCsv(original);
  auto parsed = FromCsv(csv, TestSchema(), "t2");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  for (size_t i = 0; i < original.num_rows(); ++i) {
    for (size_t c = 0; c < original.row(i).size(); ++c) {
      // Doubles round-trip through ToString; compare via string form.
      EXPECT_EQ(original.row(i)[c].ToString(), parsed->row(i)[c].ToString())
          << "cell " << i << "," << c;
    }
  }
}

TEST(CsvTest, HeaderEmittedAndValidated) {
  Table t = TestTable();
  std::string csv = ToCsv(t);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "id,name,score,flag");
  // Wrong header order rejected.
  Schema wrong({Column{"name", DataType::kString},
                Column{"id", DataType::kInt64},
                Column{"score", DataType::kDouble},
                Column{"flag", DataType::kBool}});
  EXPECT_FALSE(FromCsv(csv, wrong, "t").ok());
}

TEST(CsvTest, QuotedCellsWithDelimitersAndQuotes) {
  Table t = TestTable();
  std::string csv = ToCsv(t);
  EXPECT_NE(csv.find("\"bob,jr\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(CsvTest, NullsRoundTrip) {
  Schema schema({Column{"x", DataType::kInt64}});
  Table t("t", schema);
  (void)t.AppendRow({Value::Null()});
  (void)t.AppendRow({Value(int64_t{5})});
  std::string csv = ToCsv(t);
  auto parsed = FromCsv(csv, schema, "t");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->row(0)[0].is_null());
  EXPECT_EQ(parsed->row(1)[0].as_int64(), 5);
}

TEST(CsvTest, TypeErrorsCarryRowNumbers) {
  Schema schema({Column{"x", DataType::kInt64}});
  auto result = FromCsv("x\n1\nnot_a_number\n", schema, "t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("row 3"), std::string::npos);
}

TEST(CsvTest, ArityMismatchRejected) {
  Schema schema({Column{"x", DataType::kInt64},
                 Column{"y", DataType::kInt64}});
  EXPECT_FALSE(FromCsv("x,y\n1,2,3\n", schema, "t").ok());
  EXPECT_FALSE(FromCsv("x,y\n1\n", schema, "t").ok());
}

TEST(CsvTest, NoHeaderMode) {
  Schema schema({Column{"x", DataType::kInt64}});
  CsvOptions options;
  options.header = false;
  auto parsed = FromCsv("1\n2\n3\n", schema, "t", options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 3u);
}

TEST(CsvTest, CustomDelimiter) {
  Table t = TestTable();
  CsvOptions options;
  options.delimiter = '\t';
  std::string csv = ToCsv(t, options);
  auto parsed = FromCsv(csv, TestSchema(), "t", options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), t.num_rows());
}

}  // namespace
}  // namespace opd::storage

namespace opd::plan {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(udf::RegisterBuiltinUdfs(&udfs_).ok());
    storage::Schema schema(
        {storage::Column{"tweet_id", storage::DataType::kInt64},
         storage::Column{"user_id", storage::DataType::kInt64},
         storage::Column{"tweet_text", storage::DataType::kString}});
    auto t = std::make_shared<storage::Table>("TWTR", schema);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(t->AppendRow({storage::Value(int64_t{i}),
                                storage::Value(int64_t{i % 3}),
                                storage::Value("words here")})
                      .ok());
    }
    ASSERT_TRUE(catalog_.RegisterBase(t, {"tweet_id"}, &dfs_).ok());
    optimizer_ = std::make_unique<optimizer::Optimizer>(
        AnnotationContext{&catalog_, &views_, &udfs_},
        optimizer::CostModel());
  }

  storage::Dfs dfs_;
  catalog::Catalog catalog_;
  catalog::ViewStore views_;
  udf::UdfRegistry udfs_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
};

TEST_F(ExplainTest, RendersOperatorsAndCosts) {
  Plan p(GroupBy(Project(Scan("TWTR"), {"user_id"}), {"user_id"},
                 {AggSpec{AggFn::kCount, "", "n"}}));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  std::string text = Explain(p);
  EXPECT_NE(text.find("GROUPBY"), std::string::npos);
  EXPECT_NE(text.find("PROJECT"), std::string::npos);
  EXPECT_NE(text.find("SCAN(TWTR)"), std::string::npos);
  EXPECT_NE(text.find("total estimated cost"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
}

TEST_F(ExplainTest, SharedSubtreeMarked) {
  auto extract = Project(Scan("TWTR"), {"user_id", "tweet_text"});
  auto wine = Udf(extract, "UDF_CLASSIFY_WINE_SCORE",
                  {{"threshold", storage::Value(0.5)}});
  auto counts =
      GroupBy(extract, {"user_id"}, {AggSpec{AggFn::kCount, "", "n"}});
  Plan p(Join(wine, counts, {{"user_id", "user_id"}}));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  std::string text = Explain(p);
  EXPECT_NE(text.find("(shared)"), std::string::npos);
}

TEST_F(ExplainTest, AfkShownOnRequest) {
  Plan p(Project(Scan("TWTR"), {"user_id"}));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  ExplainOptions options;
  options.show_afk = true;
  std::string text = Explain(p, options);
  EXPECT_NE(text.find("A,F,K:"), std::string::npos);
}

TEST_F(ExplainTest, TotalCostMatchesSum) {
  Plan p(GroupBy(Scan("TWTR"), {"user_id"},
                 {AggSpec{AggFn::kCount, "", "n"}}));
  ASSERT_TRUE(optimizer_->Prepare(&p).ok());
  EXPECT_DOUBLE_EQ(TotalCost(p), p.root()->cost.total_s);
}

TEST_F(ExplainTest, EmptyPlan) {
  EXPECT_EQ(Explain(Plan()), "<empty plan>\n");
}

}  // namespace
}  // namespace opd::plan
