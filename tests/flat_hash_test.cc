// Property tests for the vectorized shuffle-hash layer (src/exec/hash/):
// the flat open-addressing tables against std::unordered_map oracles over
// randomized key distributions, and the canonical key encoding / flat hash
// family against Value-equality semantics — nulls, NaN / -0.0
// normalization, dictionary and non-dictionary strings, empty key sets, and
// duplicate-heavy key distributions.

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/hash/flat_table.h"
#include "exec/hash/hash_kernels.h"
#include "storage/row_batch.h"
#include "storage/table.h"
#include "storage/value.h"

namespace opd::exec::hash {
namespace {

using storage::Column;
using storage::DataType;
using storage::Row;
using storage::RowBatch;
using storage::Schema;
using storage::Table;
using storage::Value;

std::string KeyBytes(const Row& row, const std::vector<size_t>& cols) {
  KeyScratch scratch;
  NormalizeKeyRow(row, cols, &scratch);
  return std::string(scratch.data(), scratch.size());
}

// Small value pool: few distinct values per type so random rows collide a
// lot (duplicate-heavy), plus cross-type numeric equality (1 == 1.0 == true)
// and nulls. NaN is covered by its own test: Value::operator== follows IEEE
// (NaN != NaN) while the canonical encoding compares NaN by bit pattern, so
// it stays out of the Value-equality oracle here.
Value RandomValue(Rng* rng) {
  switch (rng->Uniform(8)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(true);
    case 2:
      return Value(static_cast<int64_t>(rng->Uniform(3)));
    case 3:
      return Value(static_cast<double>(rng->Uniform(3)));
    case 4:
      return Value(rng->Uniform(2) == 0 ? -0.0 : 0.0);
    case 5:
      return Value(std::string(1, 'a' + rng->Uniform(3)));
    case 6:
      return Value("shared-key");
    default:
      return Value(static_cast<int64_t>(1));
  }
}

TEST(KeyScratchTest, GrowsPastInlineBufferAndRetainsContents) {
  KeyScratch s;
  std::string expect;
  for (int i = 0; i < 40; ++i) {  // 40 * 5 bytes: well past the 48B inline
    const char c = static_cast<char>('a' + i % 26);
    s.PushByte(c);
    s.Append("1234", 4);
    expect += c;
    expect += "1234";
  }
  ASSERT_EQ(std::string(s.data(), s.size()), expect);
  s.Clear();
  ASSERT_EQ(s.size(), 0u);
  s.Append("xy", 2);  // reuse after clear keeps the grown buffer
  ASSERT_EQ(std::string(s.data(), s.size()), "xy");
}

TEST(HashKernelsTest, NumericCellsNormalizeAcrossTypesAndSignedZero) {
  // 1 == 1.0 == true under Value equality: one hash, one encoding.
  EXPECT_EQ(FlatCellHash(Value(true)), FlatCellHash(Value(int64_t{1})));
  EXPECT_EQ(FlatCellHash(Value(int64_t{1})), FlatCellHash(Value(1.0)));
  EXPECT_EQ(HashNumericCell(-0.0), HashNumericCell(0.0));
  Row neg{Value(-0.0)}, pos{Value(0.0)};
  EXPECT_EQ(KeyBytes(neg, {0}), KeyBytes(pos, {0}));
  // Distinct values get distinct encodings.
  Row one{Value(int64_t{1})}, two{Value(int64_t{2})};
  EXPECT_NE(KeyBytes(one, {0}), KeyBytes(two, {0}));
}

TEST(HashKernelsTest, NaNComparesByBitPattern) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Row a{Value(nan)}, b{Value(nan)};
  // Same bit pattern: equal encoding and equal hash, so one group — the
  // flat paths' documented NaN semantics (matching the legacy batch path's
  // packed-byte keys; Value::operator== would say NaN != NaN).
  EXPECT_EQ(KeyBytes(a, {0}), KeyBytes(b, {0}));
  EXPECT_EQ(FlatRowKeyHash(a, {0}), FlatRowKeyHash(b, {0}));
  // And NaN is not null, not zero.
  Row null_row{Value::Null()}, zero{Value(0.0)};
  EXPECT_NE(KeyBytes(a, {0}), KeyBytes(null_row, {0}));
  EXPECT_NE(KeyBytes(a, {0}), KeyBytes(zero, {0}));
}

TEST(HashKernelsTest, EncodingEquivalentToValueEqualityOnRandomKeys) {
  Rng rng(7);
  const std::vector<size_t> cols{0, 1};
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(Row{RandomValue(&rng), RandomValue(&rng)});
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      const bool value_eq = rows[i][0] == rows[j][0] &&
                            rows[i][1] == rows[j][1];
      const bool bytes_eq = KeyBytes(rows[i], cols) == KeyBytes(rows[j], cols);
      ASSERT_EQ(value_eq, bytes_eq)
          << "row " << i << " vs row " << j << ": Value equality and "
          << "canonical key encoding disagree";
      if (bytes_eq) {
        ASSERT_EQ(FlatRowKeyHash(rows[i], cols), FlatRowKeyHash(rows[j], cols));
      }
    }
  }
}

TEST(FlatGroupIndexTest, MatchesUnorderedMapOracleOnDuplicateHeavyKeys) {
  Rng rng(11);
  const std::vector<size_t> cols{0, 1, 2};
  // No Reserve call: growth from the 16-slot minimum exercises Rehash, and
  // the resize count must show up in the stats.
  FlatGroupIndex index;
  std::unordered_map<std::string, uint32_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    Row row{RandomValue(&rng), RandomValue(&rng), RandomValue(&rng)};
    const std::string key = KeyBytes(row, cols);
    auto [id, inserted] =
        index.InsertOrGet(FlatRowKeyHash(row, cols), key.data(),
                          static_cast<uint32_t>(key.size()));
    auto [it, oracle_inserted] =
        oracle.try_emplace(key, static_cast<uint32_t>(oracle.size()));
    ASSERT_EQ(inserted, oracle_inserted) << "iteration " << i;
    ASSERT_EQ(id, it->second) << "iteration " << i;
  }
  EXPECT_EQ(index.size(), oracle.size());
  EXPECT_GT(index.stats().resizes, 0u);
  EXPECT_GT(index.arena_bytes(), 0u);
  EXPECT_LE(index.load_factor(), 0.875);
}

TEST(FlatGroupIndexTest, ReserveMakesInsertResizeFree) {
  Rng rng(13);
  const std::vector<size_t> cols{0};
  FlatGroupIndex index;
  index.Reserve(512, 9);  // worst case: all distinct single-numeric keys
  for (int i = 0; i < 512; ++i) {
    Row row{Value(static_cast<int64_t>(i))};
    const std::string key = KeyBytes(row, cols);
    index.InsertOrGet(FlatRowKeyHash(row, cols), key.data(),
                      static_cast<uint32_t>(key.size()));
  }
  EXPECT_EQ(index.size(), 512u);
  EXPECT_EQ(index.stats().resizes, 0u);
}

TEST(FlatMultiMapTest, MatchesUnorderedMapOracleIncludingMissingProbes) {
  Rng rng(17);
  const std::vector<size_t> cols{0, 1};
  FlatMultiMap<int> table;
  std::unordered_map<std::string, std::vector<int>> oracle;
  std::vector<Row> build_rows;
  for (int i = 0; i < 2000; ++i) {
    Row row{RandomValue(&rng), RandomValue(&rng)};
    const std::string key = KeyBytes(row, cols);
    table.Insert(FlatRowKeyHash(row, cols), key.data(),
                 static_cast<uint32_t>(key.size()), i);
    oracle[key].push_back(i);
    build_rows.push_back(std::move(row));
  }
  // Probe with every build key plus fresh keys that were never inserted.
  for (int i = 0; i < 500; ++i) {
    Row probe = i < 250
                    ? build_rows[rng.Uniform(build_rows.size())]
                    : Row{Value(static_cast<int64_t>(1000 + i)),
                          Value("missing")};
    const std::string key = KeyBytes(probe, cols);
    std::vector<int> got;
    table.ForEachMatch(FlatRowKeyHash(probe, cols), key.data(),
                       static_cast<uint32_t>(key.size()),
                       [&](int payload) { got.push_back(payload); });
    auto it = oracle.find(key);
    if (it == oracle.end()) {
      ASSERT_TRUE(got.empty()) << "probe " << i << " matched a missing key";
    } else {
      // Insertion order, exactly — the join paths rely on build-row order.
      ASSERT_EQ(got, it->second) << "probe " << i;
    }
  }
}

TEST(FlatGroupIndexTest, EmptyKeySetPutsEverythingInOneGroup) {
  const std::vector<size_t> cols;  // group-by with no keys: one global group
  FlatGroupIndex index;
  for (int i = 0; i < 10; ++i) {
    Row row{Value(static_cast<int64_t>(i))};
    const std::string key = KeyBytes(row, cols);
    ASSERT_TRUE(key.empty());
    auto [id, inserted] =
        index.InsertOrGet(FlatRowKeyHash(row, cols), key.data(),
                          static_cast<uint32_t>(key.size()));
    ASSERT_EQ(id, 0u);
    ASSERT_EQ(inserted, i == 0);
  }
  EXPECT_EQ(index.size(), 1u);
}

// Batch-wide HashKeys must agree with the per-row FlatRowKeyHash on every
// lane the engine produces — typed numerics, dictionary strings, nulls —
// so one table column can be hashed in either representation.
TEST(HashKernelsTest, BatchHashKeysMatchesRowHashAcrossLanes) {
  Rng rng(23);
  Table t("t", Schema({Column{"a", DataType::kInt64},
                       Column{"s", DataType::kString},
                       Column{"d", DataType::kDouble}}));
  for (int i = 0; i < 400; ++i) {
    Row row;
    row.push_back(rng.Uniform(10) == 0
                      ? Value::Null()
                      : Value(static_cast<int64_t>(rng.Uniform(5))));
    row.push_back(rng.Uniform(10) == 0
                      ? Value::Null()
                      : Value(std::string(1, 'a' + rng.Uniform(4))));
    row.push_back(rng.Uniform(10) == 0
                      ? Value::Null()
                      : Value(static_cast<double>(rng.Uniform(3))));
    ASSERT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  const std::vector<size_t> cols{0, 1, 2};
  auto batches = t.ToBatches();
  size_t global = 0;
  for (const RowBatch& b : *batches) {
    std::vector<uint64_t> hashes(b.num_rows());
    HashKeys(b, cols, hashes.data());
    for (size_t i = 0; i < b.num_rows(); ++i, ++global) {
      ASSERT_EQ(hashes[i], FlatRowKeyHash(t.row(global), cols))
          << "row " << global;
    }
  }
  ASSERT_EQ(global, t.num_rows());
}

TEST(KeyCodecTest, SharedDictionaryUsesDictCodesAndStaysConsistent) {
  Table t("t", Schema({Column{"s", DataType::kString},
                       Column{"v", DataType::kInt64}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow(Row{Value(std::string(1, 'a' + i % 3)),
                                Value(static_cast<int64_t>(i))})
                    .ok());
  }
  auto batches = t.ToBatches();
  const std::vector<size_t> cols{0};
  const auto codecs = PlanKeyCodecs({{batches.get(), &cols}});
  ASSERT_EQ(codecs.size(), 1u);
  ASSERT_EQ(codecs[0].modes.size(), 1u);
  ASSERT_EQ(codecs[0].modes[0], KeyColMode::kDictCode);
  ASSERT_TRUE(codecs[0].bounded);
  ASSERT_EQ(codecs[0].width_bound, 1 + sizeof(uint32_t));

  // Dict-code encodings group rows exactly like the string values do.
  KeyScratch scratch;
  std::unordered_map<std::string, std::string> code_key_of_string;
  for (const RowBatch& b : *batches) {
    for (size_t i = 0; i < b.num_rows(); ++i) {
      NormalizeKey(b, i, codecs[0], &scratch);
      std::string code_key(scratch.data(), scratch.size());
      const std::string s = b.column(0).GetValue(i).as_string();
      auto [it, inserted] =
          code_key_of_string.try_emplace(s, std::move(code_key));
      if (!inserted) {
        ASSERT_EQ(it->second, std::string(scratch.data(), scratch.size()))
            << "same string, different dict-code key";
      }
    }
  }
  ASSERT_EQ(code_key_of_string.size(), 3u);
}

TEST(KeyCodecTest, DifferentDictionariesFallBackToStringBytes) {
  // Two independently built tables: same strings, different Dictionary
  // objects — dict codes are incomparable, so the codec must use the byte
  // encoding, which compares equal across the sides.
  auto make = [](const char* name) {
    Table t(name, Schema({Column{"s", DataType::kString}}));
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(
          t.AppendRow(Row{Value(std::string(1, 'x' + i % 2))}).ok());
    }
    return t;
  };
  Table t1 = make("t1"), t2 = make("t2");
  auto b1 = t1.ToBatches(), b2 = t2.ToBatches();
  const std::vector<size_t> cols{0};
  const auto codecs = PlanKeyCodecs({{b1.get(), &cols}, {b2.get(), &cols}});
  ASSERT_EQ(codecs.size(), 2u);
  EXPECT_EQ(codecs[0].modes[0], KeyColMode::kString);
  EXPECT_EQ(codecs[1].modes[0], KeyColMode::kString);
  EXPECT_FALSE(codecs[0].bounded);

  KeyScratch s1, s2;
  NormalizeKey((*b1)[0], 0, codecs[0], &s1);
  NormalizeKey((*b2)[0], 0, codecs[1], &s2);
  EXPECT_EQ(std::string(s1.data(), s1.size()),
            std::string(s2.data(), s2.size()));
  // And both equal the generic row encoding.
  EXPECT_EQ(std::string(s1.data(), s1.size()), KeyBytes(t1.row(0), cols));
}

}  // namespace
}  // namespace opd::exec::hash
