#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree with AddressSanitizer + UBSan
# (cmake -DOPD_SANITIZE=ON, see the top-level CMakeLists.txt) into
# build-asan/ and runs the full ctest suite under it — twice: once plain,
# once with OPD_TRACE=1 so every TestBed-based test records spans (the
# tracing hot paths run under the sanitizers too). Catches lifetime and
# aliasing bugs in the columnar arena/dictionary and span-recording code
# that the plain tier-1 build cannot see.
#
# After the ASan+UBSan suites pass, builds the tree a second time with
# ThreadSanitizer (cmake -DOPD_TSAN=ON, build-tsan/) and runs the
# concurrency-sensitive suites under it: the serving-layer tests
# (server_test — admission control, snapshot visibility, and the
# interleaved multi-tenant stress test with its serial-replay oracle), the
# engine's parallel-determinism suite, the hash-recycler stress test
# (concurrent tenants racing lookups/inserts on the shared recycler), and
# the query-log suite (concurrent appends racing lock-free ring snapshots,
# plus the 8-tenant query-history-vs-serial-replay determinism check inside
# ServerStress). TSan and ASan cannot share a build, hence the separate
# tree.
#
# Then runs the perf-floor gate
# (scripts/bench.sh --check) against the REGULAR build — never the
# instrumented one, whose overhead would make any timing floor meaningless —
# and then the metric-name lint (scripts/lint_metrics.py), which diffs the
# metric literals in src/ against the names `micro_engine --dump-metrics`
# actually registers.
#
# Usage: scripts/check.sh [ctest-args...]

set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DOPD_SANITIZE=ON >/dev/null
cmake --build build-asan -j
cd build-asan
ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure "$@"
echo "== re-running suite with tracing enabled (OPD_TRACE=1) =="
ASAN_OPTIONS=detect_leaks=0 OPD_TRACE=1 ctest --output-on-failure "$@"
cd ..
echo "== ThreadSanitizer pass (serving layer + parallel determinism) =="
cmake -B build-tsan -S . -DOPD_TSAN=ON >/dev/null
cmake --build build-tsan --target server_test parallel_determinism_test \
  recycler_test query_log_test -j
cd build-tsan
TSAN_OPTIONS=halt_on_error=1 ctest --output-on-failure \
  -R 'AdmissionController|ServerAdmission|Serving|ServerStress|ServerIntrospection|ParallelDeterminism|RecyclerStress|QueryLog' "$@"
cd ..
echo "== micro_eval under ASan+UBSan (expression kernels, correctness only) =="
# One sanitized pass over the fused expression kernels: masks, selection
# compaction, dictionary bitmaps, and gathers all run under ASan+UBSan.
# Timing from this run is meaningless and is discarded; the run still fails
# on outputs_match_row_eval=false or any sanitizer report.
ASAN_OPTIONS=detect_leaks=0 ./build-asan/bench/micro_eval --json >/dev/null
echo "== micro_hash under ASan+UBSan (flat shuffle tables, correctness only) =="
# One sanitized pass over the flat open-addressing tables: arena storage,
# linear probing, rehash moves, and the vectorized key-hash kernels all run
# under ASan+UBSan against the unordered_map oracle (exit 1 on divergence).
ASAN_OPTIONS=detect_leaks=0 ./build-asan/bench/micro_hash --json >/dev/null
echo "== micro_recycle under ASan+UBSan (hash recycling, correctness only) =="
# One sanitized pass over the recycler: cached-build lifetime across
# queries, shared probes of recycled tables, and the eviction sweep all run
# under ASan+UBSan (exit 1 on output divergence or any warm rebuild).
ASAN_OPTIONS=detect_leaks=0 ./build-asan/bench/micro_recycle --json >/dev/null
echo "== perf-floor gate (regular build, see scripts/bench.sh --check) =="
scripts/bench.sh --check
echo "== metric-name lint (scripts/lint_metrics.py) =="
dump="$(mktemp)"
trap 'rm -f "${dump}"' EXIT
./build/bench/micro_engine --dump-metrics > "${dump}"
python3 scripts/lint_metrics.py "${dump}" src
