#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree with AddressSanitizer + UBSan
# (cmake -DOPD_SANITIZE=ON, see the top-level CMakeLists.txt) into
# build-asan/ and runs the full ctest suite under it. Catches lifetime and
# aliasing bugs in the columnar arena/dictionary code that the plain tier-1
# build cannot see.
#
# Usage: scripts/check.sh [ctest-args...]

set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DOPD_SANITIZE=ON >/dev/null
cmake --build build-asan -j
cd build-asan
ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure "$@"
