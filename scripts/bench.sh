#!/usr/bin/env bash
# Runs the engine microbenchmark after the tier-1 build and APPENDS its
# timestamped JSON records to BENCH_engine.json (the perf trajectory of the
# execution engine across PRs — never overwritten). micro_engine --json
# emits one record per execution mode (row and batch stay on the phased
# engine for continuity; pipelined is the current default), each sweeping
# threads {1, 2, 4, 8} untraced plus one traced run at 8 threads
# (traced_rows_per_sec vs untraced_rows_per_sec = tracing overhead).
#
# Usage: scripts/bench.sh [--no-build] [--check]
#
# --check is the perf-floor gate: instead of appending to the trajectory it
# runs the benchmark once and fails (exit 1) if the pipelined record's
# speedup_8v1 falls below its recorded speedup_floor_8v1, or if any mode's
# output hash diverges from row mode (determinism regression), or if the
# warm_rewrite record shows no view reuse (views_created == 0, no accepted
# rewrites, or warm outputs diverging from the cold pass). The speedup
# floor is skipped — with a note — when the runner has fewer than 2 cores,
# since no parallel speedup is measurable there; the determinism check
# always applies. Sanitizer builds (scripts/check.sh) run the gate against
# the regular build, never the instrumented one: sanitizer overhead would
# make any timing floor meaningless.
#
# When appending, records already in BENCH_engine.json that predate the
# schema_version tag (no "ts"/"mode" keys) are moved to
# BENCH_engine.legacy.json first, so every line in the live trajectory
# parses under one schema.

set -euo pipefail
cd "$(dirname "$0")/.."

build=1
check=0
for arg in "$@"; do
  case "${arg}" in
    --no-build) build=0 ;;
    --check) check=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${build}" == 1 ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j >/dev/null
fi

if [[ "${check}" == 1 ]]; then
  out="$(mktemp)"
  trap 'rm -f "${out}"' EXIT
  ./build/bench/micro_engine --json > "${out}"
  python3 - "${out}" <<'EOF'
import json
import sys

records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
failures = []
pipelined = None
warm = None
for rec in records:
    # Only the cold sweep records carry the cross-mode hash; warm_rewrite
    # compares against its own cold pass instead.
    if "outputs_match_row_mode" in rec and not rec["outputs_match_row_mode"]:
        failures.append(
            f"mode {rec['mode']!r}: output hash diverges from row mode "
            "(determinism regression)")
    if rec.get("mode") == "pipelined":
        pipelined = rec
    if rec.get("mode") == "warm_rewrite":
        warm = rec

if warm is None:
    failures.append("no 'warm_rewrite' record in benchmark output")
else:
    if warm.get("views_created", 0) <= 0:
        failures.append("warm_rewrite: no opportunistic views were created")
    if warm.get("rewrite_decisions", {}).get("accepted", 0) <= 0:
        failures.append("warm_rewrite: the warm pass accepted no rewrites "
                        "(view reuse is not being exercised)")
    if not warm.get("outputs_match_cold_pass", False):
        failures.append("warm_rewrite: rewritten outputs diverge from the "
                        "cold pass (rewrite correctness regression)")
    print(f"bench --check: warm_rewrite views_created="
          f"{warm.get('views_created')} accepted="
          f"{warm.get('rewrite_decisions', {}).get('accepted')} "
          f"max_residual_pct={warm.get('max_residual_pct'):.1f} "
          f"decision_log_overhead_pct="
          f"{warm.get('decision_log_overhead_pct'):.1f}")

if pipelined is None:
    failures.append("no 'pipelined' record in benchmark output")
else:
    cores = pipelined.get("hw_cores", 0)
    floor = pipelined.get("speedup_floor_8v1", 0.0)
    speedup = pipelined.get("speedup_8v1", 0.0)
    if cores < 2:
        print(f"bench --check: {cores} core(s) available -- speedup floor "
              "not measurable, skipping (determinism still checked)")
    elif speedup < floor:
        failures.append(
            f"pipelined speedup_8v1 {speedup:.2f} is below the floor "
            f"{floor:.2f} (hw_cores={cores})")
    else:
        print(f"bench --check: pipelined speedup_8v1 {speedup:.2f} >= "
              f"floor {floor:.2f} (hw_cores={cores})")

if failures:
    for f in failures:
        print(f"bench --check FAILED: {f}", file=sys.stderr)
    sys.exit(1)
print("bench --check: OK")
EOF
  exit 0
fi

# Quarantine legacy records (pre-"ts"/"mode" schema) so the live file stays
# single-schema; they keep their history in BENCH_engine.legacy.json.
if [[ -f BENCH_engine.json ]]; then
  python3 - <<'EOF'
import json

keep, legacy = [], []
for line in open("BENCH_engine.json"):
    if not line.strip():
        continue
    try:
        rec = json.loads(line)
    except ValueError:
        legacy.append(line)
        continue
    (legacy if "ts" not in rec or "mode" not in rec else keep).append(line)
if legacy:
    with open("BENCH_engine.legacy.json", "a") as f:
        f.writelines(legacy)
    with open("BENCH_engine.json", "w") as f:
        f.writelines(keep)
    print(f"bench: quarantined {len(legacy)} legacy record(s) to "
          "BENCH_engine.legacy.json")
EOF
fi

ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
./build/bench/micro_engine --json | while IFS= read -r line; do
  stamped="{\"ts\":\"${ts}\",${line#\{}"
  echo "${stamped}"
  echo "${stamped}" >> BENCH_engine.json
done
