#!/usr/bin/env bash
# Runs the engine microbenchmarks after the tier-1 build and APPENDS their
# timestamped JSON records to BENCH_engine.json (the perf trajectory of the
# execution engine across PRs — never overwritten). micro_engine --json
# emits one record per execution mode (row and batch stay on the phased
# engine for continuity; batch_unfused/pipelined_unfused pin the pre-fusion
# kernels; pipelined is the current default), each sweeping threads
# {1, 2, 4, 8} untraced plus one traced run at 8 threads
# (traced_rows_per_sec vs untraced_rows_per_sec = tracing overhead).
# micro_eval --json contributes one expression-kernel record (fused
# project/filter throughput without engine overheads). micro_serve --json
# contributes two serving-layer records: "serve_observed" (the
# continuous-observability tax — the same interleaved pass with the full
# query log + slow capture on vs the log disabled, gated < 5% by --check,
# plus slow-capture bytes and the server's p95 SLO gauge) and "serve"
# (interleaved multi-tenant queries/sec, view hit rate, and the
# outputs_match_serial_replay receipt — the binary itself exits 1 when the
# receipt fails, so appending doubles as a determinism gate). micro_recycle --json contributes one hash-recycler
# record (cold vs recycled join wall time, recycler hit counters, the
# zero-rebuild receipt, and the warm-rewrite view-join hit rate; the binary
# exits 1 when recycled outputs diverge from the cold build or a warm run
# rebuilds). Every appended record carries "ts" and "git_sha" so the
# trajectory is attributable to commits.
#
# Usage: scripts/bench.sh [--no-build] [--check]
#
# --check is the perf-floor gate: instead of appending to the trajectory it
# runs the benchmarks once and fails (exit 1) if
#   * any mode's output hash diverges from row mode (determinism),
#   * the warm_rewrite record shows no view reuse (views_created == 0, no
#     accepted rewrites, or warm outputs diverging from the cold pass),
#   * the batch mode's single-thread rows/sec does not exceed row mode's by
#     the BATCH_VS_ROW_FLOOR factor (vectorization must actually pay),
#   * micro_eval's fused_int64_rows_per_sec falls below EVAL_FLOOR_ROWS_PER_SEC
#     or its fused outputs diverge from per-row evaluation,
#   * the pipelined record's speedup_8v1 falls below its recorded
#     speedup_floor_8v1 — skipped with a note when the runner has fewer than
#     2 cores (the CI container is 1-core), since no parallel speedup is
#     measurable there. Single-thread floors always apply; so does the
#     determinism check. Sanitizer builds (scripts/check.sh) run the gate
#     against the regular build, never the instrumented one: sanitizer
#     overhead would make any timing floor meaningless.
#
# When appending, records already in BENCH_engine.json that predate the
# schema_version tag (no "ts"/"mode" keys) are moved to
# BENCH_engine.legacy.json first, so every line in the live trajectory
# parses under one schema.

set -euo pipefail
cd "$(dirname "$0")/.."

# Single-thread floors enforced by --check. EVAL floor is ~25% of the rate
# measured on the 1-core CI container (159M rows/s), leaving headroom for
# noisy neighbors while still catching a vectorization regression (the
# scalar row-eval baseline on the same container is ~115M rows/s on the
# no-null int64 lane, and the pre-fusion gather path was far below that).
EVAL_FLOOR_ROWS_PER_SEC=40000000
# Batch mode must beat row mode by at least this factor on single-thread
# rows/sec (micro_engine, same workload, same thread count).
BATCH_VS_ROW_FLOOR=1.3
# The flat open-addressing shuffle tables must beat the legacy
# std::unordered_map reduce path by this factor on both the join and the
# group-by job of micro_engine's "flat_hash" record (single-thread,
# gated on byte-identical outputs).
FLAT_HASH_FLOOR=1.3
# A recycled (warm) repetition of micro_recycle's join must beat the cold
# build-every-time run by this factor (gated on byte-identical outputs and
# the zero-rebuild receipt).
RECYCLE_FLOOR=1.3
# Full continuous observability (query-history ring + JSONL sink +
# slow-query capture of EVERY query) may cost at most this much wall time
# over the same serving pass with the query log disabled (micro_serve's
# "serve_observed" record, best-of-2 per lane).
QUERYLOG_OVERHEAD_PCT_MAX=5.0

build=1
check=0
for arg in "$@"; do
  case "${arg}" in
    --no-build) build=0 ;;
    --check) check=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${build}" == 1 ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j >/dev/null
fi

if [[ "${check}" == 1 ]]; then
  out="$(mktemp)"
  trap 'rm -f "${out}"' EXIT
  ./build/bench/micro_engine --json > "${out}"
  ./build/bench/micro_eval --json >> "${out}"
  ./build/bench/micro_hash --json >> "${out}"
  ./build/bench/micro_serve --json >> "${out}"
  ./build/bench/micro_recycle --json >> "${out}"
  EVAL_FLOOR_ROWS_PER_SEC="${EVAL_FLOOR_ROWS_PER_SEC}" \
  BATCH_VS_ROW_FLOOR="${BATCH_VS_ROW_FLOOR}" \
  FLAT_HASH_FLOOR="${FLAT_HASH_FLOOR}" \
  RECYCLE_FLOOR="${RECYCLE_FLOOR}" \
  QUERYLOG_OVERHEAD_PCT_MAX="${QUERYLOG_OVERHEAD_PCT_MAX}" \
  python3 - "${out}" <<'EOF'
import json
import os
import sys

records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
failures = []
modes = {}
for rec in records:
    # Only the cold sweep records carry the cross-mode hash; warm_rewrite
    # compares against its own cold pass instead.
    if "outputs_match_row_mode" in rec and not rec["outputs_match_row_mode"]:
        failures.append(
            f"mode {rec['mode']!r}: output hash diverges from row mode "
            "(determinism regression)")
    if rec.get("bench") == "micro_eval":
        modes["eval"] = rec
    else:
        modes[rec.get("mode")] = rec

warm = modes.get("warm_rewrite")
if warm is None:
    failures.append("no 'warm_rewrite' record in benchmark output")
else:
    if warm.get("views_created", 0) <= 0:
        failures.append("warm_rewrite: no opportunistic views were created")
    if warm.get("rewrite_decisions", {}).get("accepted", 0) <= 0:
        failures.append("warm_rewrite: the warm pass accepted no rewrites "
                        "(view reuse is not being exercised)")
    if not warm.get("outputs_match_cold_pass", False):
        failures.append("warm_rewrite: rewritten outputs diverge from the "
                        "cold pass (rewrite correctness regression)")
    print(f"bench --check: warm_rewrite views_created="
          f"{warm.get('views_created')} accepted="
          f"{warm.get('rewrite_decisions', {}).get('accepted')} "
          f"max_residual_pct={warm.get('max_residual_pct'):.1f} "
          f"decision_log_overhead_pct="
          f"{warm.get('decision_log_overhead_pct'):.1f}")

pipelined = modes.get("pipelined")
if pipelined is None:
    failures.append("no 'pipelined' record in benchmark output")
else:
    cores = pipelined.get("hw_cores", 0)
    floor = pipelined.get("speedup_floor_8v1", 0.0)
    speedup = pipelined.get("speedup_8v1", 0.0)
    if cores < 2:
        print(f"bench --check: {cores} core(s) available -- speedup floor "
              "not measurable, skipping (determinism still checked)")
    elif speedup < floor:
        failures.append(
            f"pipelined speedup_8v1 {speedup:.2f} is below the floor "
            f"{floor:.2f} (hw_cores={cores})")
    else:
        print(f"bench --check: pipelined speedup_8v1 {speedup:.2f} >= "
              f"floor {floor:.2f} (hw_cores={cores})")

# Batch-vs-row single-thread throughput gate: the vectorized batch engine
# must beat the row engine on the same workload at 1 thread (a 1-core-safe
# assertion of the columnar layer's raw-speed win). Compared on each
# mode's fastest iteration, not the all-iterations aggregate: one
# noisy-neighbor stall inside either mode's run must not flip the gate.
row, batch = modes.get("row"), modes.get("batch")
ratio_floor = float(os.environ["BATCH_VS_ROW_FLOOR"])
if row is None or batch is None:
    failures.append("missing 'row' or 'batch' record in benchmark output")
else:
    row_rps = row.get("best_iter_rows_per_sec", row.get("rows_per_sec", [0]))[0]
    batch_rps = batch.get("best_iter_rows_per_sec",
                          batch.get("rows_per_sec", [0]))[0]
    ratio = batch_rps / row_rps if row_rps > 0 else 0.0
    if ratio < ratio_floor:
        failures.append(
            f"batch single-thread rows/sec is only {ratio:.2f}x row mode "
            f"(floor {ratio_floor}x): vectorized batch execution is not "
            "paying for itself")
    else:
        print(f"bench --check: batch 1-thread rows/sec = {ratio:.2f}x row "
              f"mode (floor {ratio_floor}x)")

# Expression-kernel gate: fused evaluation throughput and correctness.
ev = modes.get("eval")
eval_floor = float(os.environ["EVAL_FLOOR_ROWS_PER_SEC"])
if ev is None:
    failures.append("no micro_eval record in benchmark output")
else:
    if not ev.get("outputs_match_row_eval", False):
        failures.append("micro_eval: fused outputs diverge from per-row "
                        "evaluation (expression correctness regression)")
    rps = ev.get("fused_int64_rows_per_sec", 0.0)
    if rps < eval_floor:
        failures.append(
            f"micro_eval fused_int64_rows_per_sec {rps:.3g} is below the "
            f"floor {eval_floor:.3g}")
    else:
        print(f"bench --check: micro_eval fused int64 filter "
              f"{rps:.3g} rows/s >= floor {eval_floor:.3g}")

# Flat-hash shuffle gate: micro_engine's "flat_hash" record compares the
# flat open-addressing join/group-by tables against the legacy
# unordered_map reduce path at 1 thread. Both speedups must clear
# FLAT_HASH_FLOOR, and only count if the outputs are byte-identical — a
# speedup with different bytes is a correctness bug, not a win.
fh = modes.get("flat_hash")
fh_floor = float(os.environ["FLAT_HASH_FLOOR"])
if fh is None:
    failures.append("no 'flat_hash' record in benchmark output")
else:
    if not fh.get("outputs_match", False):
        failures.append("flat_hash: flat outputs diverge from the legacy "
                        "hash path (correctness regression)")
    else:
        for kind in ("join", "groupby"):
            sp = fh.get(f"{kind}_speedup", 0.0)
            if sp < fh_floor:
                failures.append(
                    f"flat_hash {kind}_speedup {sp:.2f} is below the floor "
                    f"{fh_floor}x: the flat shuffle tables are not paying "
                    "for themselves")
            else:
                print(f"bench --check: flat_hash {kind} = {sp:.2f}x legacy "
                      f"(floor {fh_floor}x)")

# micro_hash allocation audit: with the table fully pre-sized, a numeric-key
# build+probe must not allocate per row (KeyScratch inline buffer + arena).
mh = modes.get("hash")
if mh is None:
    failures.append("no micro_hash record in benchmark output")
else:
    if not mh.get("outputs_match", False):
        failures.append("micro_hash: flat tables diverge from the "
                        "unordered_map oracle")
    for k in ("numeric_build_allocs_per_row", "numeric_probe_allocs_per_row"):
        if mh.get(k, 1.0) > 0.001:
            failures.append(
                f"micro_hash {k} = {mh.get(k):.4f}: the flat build/probe "
                "inner loops are allocating per row")
    if not any("micro_hash" in f for f in failures):
        print(f"bench --check: micro_hash zero-alloc build/probe OK, "
              f"join {mh.get('join_speedup', 0):.2f}x / groupby "
              f"{mh.get('groupby_speedup', 0):.2f}x vs unordered_map")

# Serving-layer gate: interleaved multi-tenant outputs must be
# byte-identical to the serial replay of the recorded schedule (snapshot
# consistency), and at least one query must have reused a view another
# tenant materialized (the shared ViewStore is actually shared).
serve = modes.get("serve")
if serve is None:
    failures.append("no micro_serve record in benchmark output")
else:
    if not serve.get("outputs_match_serial_replay", False):
        failures.append("micro_serve: interleaved outputs diverge from the "
                        "serial replay (snapshot-consistency regression)")
    if serve.get("cross_tenant_reuse", 0) < 1:
        failures.append("micro_serve: no cross-tenant view reuse observed "
                        "(the shared view store is not being shared)")
    if not any("micro_serve" in f for f in failures):
        print(f"bench --check: micro_serve {serve.get('queries_per_sec'):.1f} "
              f"queries/s, view_hit_rate={serve.get('view_hit_rate'):.2f}, "
              f"cross_tenant_reuse={serve.get('cross_tenant_reuse')}, "
              "serial replay OK")

# Observability-tax gate: serving with the full query log on (history ring
# + JSONL sink + slow-query capture of every query) must stay within
# QUERYLOG_OVERHEAD_PCT_MAX of the same pass with the log disabled. Both
# lanes are best-of-2 inside micro_serve, so one stall does not flip the
# gate; negative overhead (observed lane won the coin flip) passes.
observed = modes.get("serve_observed")
overhead_max = float(os.environ["QUERYLOG_OVERHEAD_PCT_MAX"])
if observed is None:
    failures.append("no 'serve_observed' record in benchmark output")
else:
    overhead = observed.get("querylog_overhead_pct", 1e9)
    if observed.get("querylog_appended", 0) != observed.get("queries", -1):
        failures.append(
            f"serve_observed: logged {observed.get('querylog_appended')} "
            f"records for {observed.get('queries')} queries (query history "
            "is lossy)")
    if overhead > overhead_max:
        failures.append(
            f"serve_observed querylog_overhead_pct {overhead:.1f} exceeds "
            f"{overhead_max:.1f}%: continuous observability is not cheap "
            "enough to leave on")
    elif not any("serve_observed" in f for f in failures):
        print(f"bench --check: serve_observed overhead {overhead:+.1f}% "
              f"(max {overhead_max:.1f}%), "
              f"{observed.get('slow_capture_bytes')} slow-capture bytes, "
              f"p95 {observed.get('latency_p95_s'):.3f}s")

# Hash-recycler gate: micro_recycle's warm repetitions of the same join
# must probe the cached build (zero_rebuild receipt) and clear the
# RECYCLE_FLOOR speedup over the cold build-every-time run, with
# byte-identical outputs — a fast wrong answer is a correctness bug.
rc = modes.get("recycle")
rc_floor = float(os.environ["RECYCLE_FLOOR"])
if rc is None:
    failures.append("no micro_recycle record in benchmark output")
else:
    if not rc.get("outputs_match", False):
        failures.append("micro_recycle: recycled join outputs diverge from "
                        "the cold build (recycling correctness regression)")
    if not rc.get("zero_rebuild", False):
        failures.append("micro_recycle: warm runs rebuilt the hash table "
                        "(the recycler is not being hit)")
    sp = rc.get("repeated_join_speedup", 0.0)
    if sp < rc_floor:
        failures.append(
            f"micro_recycle repeated_join_speedup {sp:.2f} is below the "
            f"floor {rc_floor}x: recycling is not paying for itself")
    elif not any("micro_recycle" in f for f in failures):
        print(f"bench --check: micro_recycle warm join = {sp:.2f}x cold "
              f"(floor {rc_floor}x), warm_rewrite_hit_rate="
              f"{rc.get('warm_rewrite_hit_rate', 0.0):.2f}")

if failures:
    for f in failures:
        print(f"bench --check FAILED: {f}", file=sys.stderr)
    sys.exit(1)
print("bench --check: OK")
EOF
  exit 0
fi

# Quarantine legacy records (pre-"ts"/"mode" schema) so the live file stays
# single-schema; they keep their history in BENCH_engine.legacy.json.
if [[ -f BENCH_engine.json ]]; then
  python3 - <<'EOF'
import json

keep, legacy = [], []
for line in open("BENCH_engine.json"):
    if not line.strip():
        continue
    try:
        rec = json.loads(line)
    except ValueError:
        legacy.append(line)
        continue
    (legacy if "ts" not in rec or "mode" not in rec else keep).append(line)
if legacy:
    with open("BENCH_engine.legacy.json", "a") as f:
        f.writelines(legacy)
    with open("BENCH_engine.json", "w") as f:
        f.writelines(keep)
    print(f"bench: quarantined {len(legacy)} legacy record(s) to "
          "BENCH_engine.legacy.json")
EOF
fi

ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
git_sha="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
{ ./build/bench/micro_engine --json; ./build/bench/micro_eval --json; \
  ./build/bench/micro_hash --json; ./build/bench/micro_serve --json; \
  ./build/bench/micro_recycle --json; } |
while IFS= read -r line; do
  stamped="{\"ts\":\"${ts}\",\"git_sha\":\"${git_sha}\",${line#\{}"
  echo "${stamped}"
  echo "${stamped}" >> BENCH_engine.json
done
