#!/usr/bin/env bash
# Runs the engine microbenchmark after the tier-1 build and APPENDS its
# timestamped JSON records to BENCH_engine.json (the perf trajectory of the
# execution engine across PRs — never overwritten). micro_engine --json
# emits one record per execution mode (row vs. batch), each sweeping
# threads {1, 2, 4, 8} untraced plus one traced run at 8 threads
# (traced_rows_per_sec vs untraced_rows_per_sec = tracing overhead).
#
# Usage: scripts/bench.sh [--no-build]

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" != "--no-build" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j >/dev/null
fi

ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
./build/bench/micro_engine --json | while IFS= read -r line; do
  stamped="{\"ts\":\"${ts}\",${line#\{}"
  echo "${stamped}"
  echo "${stamped}" >> BENCH_engine.json
done
