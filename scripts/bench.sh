#!/usr/bin/env bash
# Runs the engine microbenchmark after the tier-1 build and APPENDS its
# timestamped JSON records to BENCH_engine.json (the perf trajectory of the
# execution engine across PRs — never overwritten). micro_engine --json
# emits one record per execution mode (row and batch stay on the phased
# engine for continuity; pipelined is the current default), each sweeping
# threads {1, 2, 4, 8} untraced plus one traced run at 8 threads
# (traced_rows_per_sec vs untraced_rows_per_sec = tracing overhead).
#
# Usage: scripts/bench.sh [--no-build] [--check]
#
# --check is the perf-floor gate: instead of appending to the trajectory it
# runs the benchmark once and fails (exit 1) if the pipelined record's
# speedup_8v1 falls below its recorded speedup_floor_8v1, or if any mode's
# output hash diverges from row mode (determinism regression). The speedup
# floor is skipped — with a note — when the runner has fewer than 2 cores,
# since no parallel speedup is measurable there; the determinism check
# always applies. Sanitizer builds (scripts/check.sh) run the gate against
# the regular build, never the instrumented one: sanitizer overhead would
# make any timing floor meaningless.

set -euo pipefail
cd "$(dirname "$0")/.."

build=1
check=0
for arg in "$@"; do
  case "${arg}" in
    --no-build) build=0 ;;
    --check) check=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${build}" == 1 ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j >/dev/null
fi

if [[ "${check}" == 1 ]]; then
  out="$(mktemp)"
  trap 'rm -f "${out}"' EXIT
  ./build/bench/micro_engine --json > "${out}"
  python3 - "${out}" <<'EOF'
import json
import sys

records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
failures = []
pipelined = None
for rec in records:
    if not rec.get("outputs_match_row_mode", False):
        failures.append(
            f"mode {rec['mode']!r}: output hash diverges from row mode "
            "(determinism regression)")
    if rec.get("mode") == "pipelined":
        pipelined = rec

if pipelined is None:
    failures.append("no 'pipelined' record in benchmark output")
else:
    cores = pipelined.get("hw_cores", 0)
    floor = pipelined.get("speedup_floor_8v1", 0.0)
    speedup = pipelined.get("speedup_8v1", 0.0)
    if cores < 2:
        print(f"bench --check: {cores} core(s) available -- speedup floor "
              "not measurable, skipping (determinism still checked)")
    elif speedup < floor:
        failures.append(
            f"pipelined speedup_8v1 {speedup:.2f} is below the floor "
            f"{floor:.2f} (hw_cores={cores})")
    else:
        print(f"bench --check: pipelined speedup_8v1 {speedup:.2f} >= "
              f"floor {floor:.2f} (hw_cores={cores})")

if failures:
    for f in failures:
        print(f"bench --check FAILED: {f}", file=sys.stderr)
    sys.exit(1)
print("bench --check: OK")
EOF
  exit 0
fi

ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
./build/bench/micro_engine --json | while IFS= read -r line; do
  stamped="{\"ts\":\"${ts}\",${line#\{}"
  echo "${stamped}"
  echo "${stamped}" >> BENCH_engine.json
done
