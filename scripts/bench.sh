#!/usr/bin/env bash
# Runs the engine microbenchmark after the tier-1 build and appends its
# one-line JSON result to BENCH_engine.json (the perf trajectory of the
# execution engine across PRs).
#
# Usage: scripts/bench.sh [--no-build]

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" != "--no-build" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j >/dev/null
fi

line="$(./build/bench/micro_engine --json)"
echo "${line}"
echo "${line}" >> BENCH_engine.json
