#!/usr/bin/env python3
"""Metric-name lint (scripts/check.sh runs this after the perf gate).

Cross-checks two sources of truth:

1. Every metric name registered at runtime -- the output of
   `micro_engine --dump-metrics`, which runs a warmed workload touching
   every subsystem and prints MetricRegistry::Global() names -- must match
   the DESIGN.md naming scheme: dot-separated lowercase
   `<subsystem>.<object>[.<event>]` (two or three segments, e.g.
   `engine.jobs`, `viewstore.find.hit`).

2. Every metric-name string literal passed to counter()/gauge()/histogram()
   in src/ must (a) match the same scheme and (b) appear in the registered
   set -- a literal the dump workload never registers is dead code or a
   misspelling that would silently publish nowhere anyone looks.

Dynamically-built names (e.g. the per-UDF drift gauges) carry no literal and
are checked by rule 1 only.

Usage: lint_metrics.py <dump-file> [src-root]
"""

import pathlib
import re
import sys

NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+){1,2}$")
# Names that must ALWAYS be in the registered dump. The hash-recycler
# instrumentation only resolves when a recycler is attached to the engine
# (the serving layer wires one up), so a wiring regression would silently
# drop these from the dump instead of tripping rule 2 -- pin them here.
# Likewise the server.slo.* / server.querylog.* families: Server::Create
# registers them eagerly whenever the query log is on, so their absence
# means the continuous-observability wiring regressed (DESIGN.md §3),
# and dashboards scraping these exact names would silently flatline.
REQUIRED_NAMES = {
    "engine.recycle.hit",
    "engine.recycle.miss",
    "engine.recycle.insert",
    "engine.recycle.evict",
    "engine.recycle.bytes",
    "server.recycle.hits",
    "server.recycle.misses",
    "server.slo.latency_s",
    "server.slo.latency_p50",
    "server.slo.latency_p95",
    "server.slo.latency_p99",
    "server.slo.queue_wait_p50",
    "server.slo.queue_wait_p95",
    "server.slo.queue_wait_p99",
    "server.querylog.appended",
    "server.querylog.dropped",
    "server.querylog.slow_captured",
    "server.querylog.slow_evicted",
    "server.querylog.capture_bytes",
}
# counter("...")/gauge("...")/histogram("...") calls; DOTALL so a ternary
# spanning lines (e.g. the memo hit/miss counter) still parses.
CALL_RE = re.compile(r"\b(?:counter|gauge|histogram)\s*\(([^)]*)\)", re.S)
STRING_RE = re.compile(r'"([^"]+)"')


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    dump_path = sys.argv[1]
    src_root = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "src")

    registered = {line.strip() for line in open(dump_path) if line.strip()}
    failures = []

    for name in sorted(registered):
        if not NAME_RE.match(name):
            failures.append(
                f"registered metric {name!r} violates the "
                "<subsystem>.<object>[.<event>] naming scheme")

    for name in sorted(REQUIRED_NAMES - registered):
        failures.append(
            f"required metric {name!r} is not registered by the "
            "--dump-metrics workload (recycler instrumentation unwired?)")

    literals = {}  # name -> first file seen in
    files = sorted(src_root.rglob("*.cc")) + sorted(src_root.rglob("*.h"))
    for path in files:
        for call in CALL_RE.finditer(path.read_text()):
            for lit in STRING_RE.findall(call.group(1)):
                literals.setdefault(lit, str(path))

    if not literals:
        failures.append(f"found no metric literals under {src_root}/ "
                        "(lint extraction broke?)")
    for lit, where in sorted(literals.items()):
        if not NAME_RE.match(lit):
            failures.append(
                f"metric literal {lit!r} ({where}) violates the "
                "<subsystem>.<object>[.<event>] naming scheme")
        elif lit not in registered:
            failures.append(
                f"metric literal {lit!r} ({where}) is never registered by "
                "the --dump-metrics workload (dead or misnamed metric)")

    if failures:
        for f in failures:
            print(f"lint_metrics FAILED: {f}", file=sys.stderr)
        return 1
    print(f"lint_metrics: OK ({len(registered)} registered names, "
          f"{len(literals)} literals in {src_root}/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
