file(REMOVE_RECURSE
  "CMakeFiles/table1_analyst_accumulation.dir/table1_analyst_accumulation.cc.o"
  "CMakeFiles/table1_analyst_accumulation.dir/table1_analyst_accumulation.cc.o.d"
  "table1_analyst_accumulation"
  "table1_analyst_accumulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_analyst_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
