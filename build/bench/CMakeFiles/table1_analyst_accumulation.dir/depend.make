# Empty dependencies file for table1_analyst_accumulation.
# This may be replaced when dependencies are built.
