# Empty dependencies file for fig09_algorithm_comparison.
# This may be replaced when dependencies are built.
