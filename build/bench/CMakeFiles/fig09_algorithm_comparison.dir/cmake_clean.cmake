file(REMOVE_RECURSE
  "CMakeFiles/fig09_algorithm_comparison.dir/fig09_algorithm_comparison.cc.o"
  "CMakeFiles/fig09_algorithm_comparison.dir/fig09_algorithm_comparison.cc.o.d"
  "fig09_algorithm_comparison"
  "fig09_algorithm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_algorithm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
