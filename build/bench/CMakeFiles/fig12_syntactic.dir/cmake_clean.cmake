file(REMOVE_RECURSE
  "CMakeFiles/fig12_syntactic.dir/fig12_syntactic.cc.o"
  "CMakeFiles/fig12_syntactic.dir/fig12_syntactic.cc.o.d"
  "fig12_syntactic"
  "fig12_syntactic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_syntactic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
