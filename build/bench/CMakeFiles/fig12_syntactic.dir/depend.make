# Empty dependencies file for fig12_syntactic.
# This may be replaced when dependencies are built.
