# Empty dependencies file for ablation_rewriter.
# This may be replaced when dependencies are built.
