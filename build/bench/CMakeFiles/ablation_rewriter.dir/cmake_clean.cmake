file(REMOVE_RECURSE
  "CMakeFiles/ablation_rewriter.dir/ablation_rewriter.cc.o"
  "CMakeFiles/ablation_rewriter.dir/ablation_rewriter.cc.o.d"
  "ablation_rewriter"
  "ablation_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
