file(REMOVE_RECURSE
  "CMakeFiles/fig08_user_evolution.dir/fig08_user_evolution.cc.o"
  "CMakeFiles/fig08_user_evolution.dir/fig08_user_evolution.cc.o.d"
  "fig08_user_evolution"
  "fig08_user_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_user_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
