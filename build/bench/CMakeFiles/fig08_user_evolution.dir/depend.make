# Empty dependencies file for fig08_user_evolution.
# This may be replaced when dependencies are built.
