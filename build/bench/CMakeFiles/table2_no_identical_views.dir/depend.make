# Empty dependencies file for table2_no_identical_views.
# This may be replaced when dependencies are built.
