file(REMOVE_RECURSE
  "CMakeFiles/table2_no_identical_views.dir/table2_no_identical_views.cc.o"
  "CMakeFiles/table2_no_identical_views.dir/table2_no_identical_views.cc.o.d"
  "table2_no_identical_views"
  "table2_no_identical_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_no_identical_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
