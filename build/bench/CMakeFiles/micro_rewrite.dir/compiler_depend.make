# Empty compiler generated dependencies file for micro_rewrite.
# This may be replaced when dependencies are built.
