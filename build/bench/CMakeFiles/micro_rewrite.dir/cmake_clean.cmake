file(REMOVE_RECURSE
  "CMakeFiles/micro_rewrite.dir/micro_rewrite.cc.o"
  "CMakeFiles/micro_rewrite.dir/micro_rewrite.cc.o.d"
  "micro_rewrite"
  "micro_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
