# Empty dependencies file for fig07_query_evolution.
# This may be replaced when dependencies are built.
