file(REMOVE_RECURSE
  "CMakeFiles/fig07_query_evolution.dir/fig07_query_evolution.cc.o"
  "CMakeFiles/fig07_query_evolution.dir/fig07_query_evolution.cc.o.d"
  "fig07_query_evolution"
  "fig07_query_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_query_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
