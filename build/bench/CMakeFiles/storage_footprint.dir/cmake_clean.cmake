file(REMOVE_RECURSE
  "CMakeFiles/storage_footprint.dir/storage_footprint.cc.o"
  "CMakeFiles/storage_footprint.dir/storage_footprint.cc.o.d"
  "storage_footprint"
  "storage_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
