# Empty compiler generated dependencies file for storage_footprint.
# This may be replaced when dependencies are built.
