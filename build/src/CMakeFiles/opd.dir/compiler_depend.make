# Empty compiler generated dependencies file for opd.
# This may be replaced when dependencies are built.
