file(REMOVE_RECURSE
  "libopd.a"
)
