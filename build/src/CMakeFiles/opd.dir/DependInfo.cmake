
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/afk/afk.cc" "src/CMakeFiles/opd.dir/afk/afk.cc.o" "gcc" "src/CMakeFiles/opd.dir/afk/afk.cc.o.d"
  "/root/repo/src/afk/attribute.cc" "src/CMakeFiles/opd.dir/afk/attribute.cc.o" "gcc" "src/CMakeFiles/opd.dir/afk/attribute.cc.o.d"
  "/root/repo/src/afk/predicate.cc" "src/CMakeFiles/opd.dir/afk/predicate.cc.o" "gcc" "src/CMakeFiles/opd.dir/afk/predicate.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/opd.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/opd.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/eviction.cc" "src/CMakeFiles/opd.dir/catalog/eviction.cc.o" "gcc" "src/CMakeFiles/opd.dir/catalog/eviction.cc.o.d"
  "/root/repo/src/catalog/view_store.cc" "src/CMakeFiles/opd.dir/catalog/view_store.cc.o" "gcc" "src/CMakeFiles/opd.dir/catalog/view_store.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/opd.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/opd.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/opd.dir/common/status.cc.o" "gcc" "src/CMakeFiles/opd.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/opd.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/opd.dir/common/string_util.cc.o.d"
  "/root/repo/src/exec/engine.cc" "src/CMakeFiles/opd.dir/exec/engine.cc.o" "gcc" "src/CMakeFiles/opd.dir/exec/engine.cc.o.d"
  "/root/repo/src/exec/metrics.cc" "src/CMakeFiles/opd.dir/exec/metrics.cc.o" "gcc" "src/CMakeFiles/opd.dir/exec/metrics.cc.o.d"
  "/root/repo/src/exec/stats_collector.cc" "src/CMakeFiles/opd.dir/exec/stats_collector.cc.o" "gcc" "src/CMakeFiles/opd.dir/exec/stats_collector.cc.o.d"
  "/root/repo/src/exec/udf_exec.cc" "src/CMakeFiles/opd.dir/exec/udf_exec.cc.o" "gcc" "src/CMakeFiles/opd.dir/exec/udf_exec.cc.o.d"
  "/root/repo/src/optimizer/calibration.cc" "src/CMakeFiles/opd.dir/optimizer/calibration.cc.o" "gcc" "src/CMakeFiles/opd.dir/optimizer/calibration.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/opd.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/opd.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/opd.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/opd.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/oql/lexer.cc" "src/CMakeFiles/opd.dir/oql/lexer.cc.o" "gcc" "src/CMakeFiles/opd.dir/oql/lexer.cc.o.d"
  "/root/repo/src/oql/parser.cc" "src/CMakeFiles/opd.dir/oql/parser.cc.o" "gcc" "src/CMakeFiles/opd.dir/oql/parser.cc.o.d"
  "/root/repo/src/oql/printer.cc" "src/CMakeFiles/opd.dir/oql/printer.cc.o" "gcc" "src/CMakeFiles/opd.dir/oql/printer.cc.o.d"
  "/root/repo/src/plan/annotate.cc" "src/CMakeFiles/opd.dir/plan/annotate.cc.o" "gcc" "src/CMakeFiles/opd.dir/plan/annotate.cc.o.d"
  "/root/repo/src/plan/explain.cc" "src/CMakeFiles/opd.dir/plan/explain.cc.o" "gcc" "src/CMakeFiles/opd.dir/plan/explain.cc.o.d"
  "/root/repo/src/plan/fingerprint.cc" "src/CMakeFiles/opd.dir/plan/fingerprint.cc.o" "gcc" "src/CMakeFiles/opd.dir/plan/fingerprint.cc.o.d"
  "/root/repo/src/plan/job.cc" "src/CMakeFiles/opd.dir/plan/job.cc.o" "gcc" "src/CMakeFiles/opd.dir/plan/job.cc.o.d"
  "/root/repo/src/plan/operator.cc" "src/CMakeFiles/opd.dir/plan/operator.cc.o" "gcc" "src/CMakeFiles/opd.dir/plan/operator.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/opd.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/opd.dir/plan/plan.cc.o.d"
  "/root/repo/src/rewrite/advisor.cc" "src/CMakeFiles/opd.dir/rewrite/advisor.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/advisor.cc.o.d"
  "/root/repo/src/rewrite/bf_rewrite.cc" "src/CMakeFiles/opd.dir/rewrite/bf_rewrite.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/bf_rewrite.cc.o.d"
  "/root/repo/src/rewrite/candidate.cc" "src/CMakeFiles/opd.dir/rewrite/candidate.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/candidate.cc.o.d"
  "/root/repo/src/rewrite/dp_rewrite.cc" "src/CMakeFiles/opd.dir/rewrite/dp_rewrite.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/dp_rewrite.cc.o.d"
  "/root/repo/src/rewrite/guess_complete.cc" "src/CMakeFiles/opd.dir/rewrite/guess_complete.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/guess_complete.cc.o.d"
  "/root/repo/src/rewrite/merge.cc" "src/CMakeFiles/opd.dir/rewrite/merge.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/merge.cc.o.d"
  "/root/repo/src/rewrite/opt_cost.cc" "src/CMakeFiles/opd.dir/rewrite/opt_cost.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/opt_cost.cc.o.d"
  "/root/repo/src/rewrite/rewrite_enum.cc" "src/CMakeFiles/opd.dir/rewrite/rewrite_enum.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/rewrite_enum.cc.o.d"
  "/root/repo/src/rewrite/syntactic.cc" "src/CMakeFiles/opd.dir/rewrite/syntactic.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/syntactic.cc.o.d"
  "/root/repo/src/rewrite/view_finder.cc" "src/CMakeFiles/opd.dir/rewrite/view_finder.cc.o" "gcc" "src/CMakeFiles/opd.dir/rewrite/view_finder.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/opd.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/opd.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/dfs.cc" "src/CMakeFiles/opd.dir/storage/dfs.cc.o" "gcc" "src/CMakeFiles/opd.dir/storage/dfs.cc.o.d"
  "/root/repo/src/storage/persistence.cc" "src/CMakeFiles/opd.dir/storage/persistence.cc.o" "gcc" "src/CMakeFiles/opd.dir/storage/persistence.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/opd.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/opd.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/opd.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/opd.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/opd.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/opd.dir/storage/value.cc.o.d"
  "/root/repo/src/udf/builtin_udfs.cc" "src/CMakeFiles/opd.dir/udf/builtin_udfs.cc.o" "gcc" "src/CMakeFiles/opd.dir/udf/builtin_udfs.cc.o.d"
  "/root/repo/src/udf/local_function.cc" "src/CMakeFiles/opd.dir/udf/local_function.cc.o" "gcc" "src/CMakeFiles/opd.dir/udf/local_function.cc.o.d"
  "/root/repo/src/udf/udf.cc" "src/CMakeFiles/opd.dir/udf/udf.cc.o" "gcc" "src/CMakeFiles/opd.dir/udf/udf.cc.o.d"
  "/root/repo/src/udf/udf_registry.cc" "src/CMakeFiles/opd.dir/udf/udf_registry.cc.o" "gcc" "src/CMakeFiles/opd.dir/udf/udf_registry.cc.o.d"
  "/root/repo/src/workload/datagen.cc" "src/CMakeFiles/opd.dir/workload/datagen.cc.o" "gcc" "src/CMakeFiles/opd.dir/workload/datagen.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/opd.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/opd.dir/workload/queries.cc.o.d"
  "/root/repo/src/workload/scenarios.cc" "src/CMakeFiles/opd.dir/workload/scenarios.cc.o" "gcc" "src/CMakeFiles/opd.dir/workload/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
