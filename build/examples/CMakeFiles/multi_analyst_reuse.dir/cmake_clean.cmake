file(REMOVE_RECURSE
  "CMakeFiles/multi_analyst_reuse.dir/multi_analyst_reuse.cpp.o"
  "CMakeFiles/multi_analyst_reuse.dir/multi_analyst_reuse.cpp.o.d"
  "multi_analyst_reuse"
  "multi_analyst_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_analyst_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
