# Empty dependencies file for multi_analyst_reuse.
# This may be replaced when dependencies are built.
