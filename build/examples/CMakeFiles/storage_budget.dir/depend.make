# Empty dependencies file for storage_budget.
# This may be replaced when dependencies are built.
