file(REMOVE_RECURSE
  "CMakeFiles/storage_budget.dir/storage_budget.cpp.o"
  "CMakeFiles/storage_budget.dir/storage_budget.cpp.o.d"
  "storage_budget"
  "storage_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
