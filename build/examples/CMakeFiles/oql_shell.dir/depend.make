# Empty dependencies file for oql_shell.
# This may be replaced when dependencies are built.
