# Empty dependencies file for udf_model_tour.
# This may be replaced when dependencies are built.
