file(REMOVE_RECURSE
  "CMakeFiles/udf_model_tour.dir/udf_model_tour.cpp.o"
  "CMakeFiles/udf_model_tour.dir/udf_model_tour.cpp.o.d"
  "udf_model_tour"
  "udf_model_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_model_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
