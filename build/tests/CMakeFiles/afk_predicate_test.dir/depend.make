# Empty dependencies file for afk_predicate_test.
# This may be replaced when dependencies are built.
