file(REMOVE_RECURSE
  "CMakeFiles/afk_predicate_test.dir/afk_predicate_test.cc.o"
  "CMakeFiles/afk_predicate_test.dir/afk_predicate_test.cc.o.d"
  "afk_predicate_test"
  "afk_predicate_test.pdb"
  "afk_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afk_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
