file(REMOVE_RECURSE
  "CMakeFiles/advisor_persistence_test.dir/advisor_persistence_test.cc.o"
  "CMakeFiles/advisor_persistence_test.dir/advisor_persistence_test.cc.o.d"
  "advisor_persistence_test"
  "advisor_persistence_test.pdb"
  "advisor_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
