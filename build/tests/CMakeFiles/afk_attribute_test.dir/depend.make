# Empty dependencies file for afk_attribute_test.
# This may be replaced when dependencies are built.
