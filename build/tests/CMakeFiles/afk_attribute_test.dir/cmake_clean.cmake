file(REMOVE_RECURSE
  "CMakeFiles/afk_attribute_test.dir/afk_attribute_test.cc.o"
  "CMakeFiles/afk_attribute_test.dir/afk_attribute_test.cc.o.d"
  "afk_attribute_test"
  "afk_attribute_test.pdb"
  "afk_attribute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afk_attribute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
