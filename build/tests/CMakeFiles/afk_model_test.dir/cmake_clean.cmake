file(REMOVE_RECURSE
  "CMakeFiles/afk_model_test.dir/afk_model_test.cc.o"
  "CMakeFiles/afk_model_test.dir/afk_model_test.cc.o.d"
  "afk_model_test"
  "afk_model_test.pdb"
  "afk_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afk_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
