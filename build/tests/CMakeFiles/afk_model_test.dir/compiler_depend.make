# Empty compiler generated dependencies file for afk_model_test.
# This may be replaced when dependencies are built.
