file(REMOVE_RECURSE
  "CMakeFiles/oql_test.dir/oql_test.cc.o"
  "CMakeFiles/oql_test.dir/oql_test.cc.o.d"
  "oql_test"
  "oql_test.pdb"
  "oql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
