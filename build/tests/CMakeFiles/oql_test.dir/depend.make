# Empty dependencies file for oql_test.
# This may be replaced when dependencies are built.
