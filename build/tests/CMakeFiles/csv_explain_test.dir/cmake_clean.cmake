file(REMOVE_RECURSE
  "CMakeFiles/csv_explain_test.dir/csv_explain_test.cc.o"
  "CMakeFiles/csv_explain_test.dir/csv_explain_test.cc.o.d"
  "csv_explain_test"
  "csv_explain_test.pdb"
  "csv_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
