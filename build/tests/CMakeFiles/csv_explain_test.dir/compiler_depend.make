# Empty compiler generated dependencies file for csv_explain_test.
# This may be replaced when dependencies are built.
