# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/afk_attribute_test[1]_include.cmake")
include("/root/repo/build/tests/afk_predicate_test[1]_include.cmake")
include("/root/repo/build/tests/afk_model_test[1]_include.cmake")
include("/root/repo/build/tests/udf_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/exec_engine_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/eviction_test[1]_include.cmake")
include("/root/repo/build/tests/oql_test[1]_include.cmake")
include("/root/repo/build/tests/csv_explain_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_persistence_test[1]_include.cmake")
include("/root/repo/build/tests/candidate_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
